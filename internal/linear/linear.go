// Package linear implements brute-force similarity search by scanning
// every indexed item. It is the ground truth the tree structures are
// validated against and the worst-case baseline in the benchmarks: a
// range query always costs exactly n distance computations.
//
// Queries (Range, KNN and their variants) read only immutable state and
// are safe to run concurrently against one instance; the shared
// distance counter is atomic.
package linear

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/quant"
)

// Scan is a linear-scan index over a fixed item set. The embedded
// obs.Hooks let callers attach an Observer and/or Tracer; with neither
// attached the query paths pay only nil checks.
type Scan[T any] struct {
	obs.Hooks
	items []T
	dist  *metric.Counter[T]

	// Quantized pre-filter state (EnableQuantize); nil when off.
	// Exactly one of qcodes/qf32 is non-nil while armed.
	qset   *quant.Set
	qcodes []byte
	qf32   []float32
}

var _ index.StatsIndex[int] = (*Scan[int])(nil)

// New returns a Scan over items measuring distances through dist. The
// item slice is copied.
func New[T any](items []T, dist *metric.Counter[T]) *Scan[T] {
	s := &Scan[T]{items: make([]T, len(items)), dist: dist}
	copy(s.items, items)
	return s
}

// Len reports the number of indexed items.
func (s *Scan[T]) Len() int { return len(s.items) }

// Counter returns the counted metric the scan measures distances with.
func (s *Scan[T]) Counter() *metric.Counter[T] { return s.dist }

// DistanceCount reports the cumulative distance computations on the
// scan's counter, the paper's cost metric.
func (s *Scan[T]) DistanceCount() int64 { return s.dist.Count() }

// Range returns every item within distance r of q, computing exactly
// Len() distances. It delegates to RangeWithStats.
func (s *Scan[T]) Range(q T, r float64) []T {
	out, _ := s.RangeWithStats(q, r)
	return out
}

// RangeWithStats is Range plus the trivial breakdown of a scan: every
// item is a candidate and every candidate is computed.
func (s *Scan[T]) RangeWithStats(q T, r float64) ([]T, index.SearchStats) {
	span := s.StartQuery(obs.KindRange)
	var st index.SearchStats
	var out []T
	qp := s.prepareQuant(q)
	qset, qcodes, qf32 := s.qset, s.qcodes, s.qf32
	filteredQuant := 0
	for i, it := range s.items {
		st.Candidates++
		st.Computed++
		s.TraceDistance(1)
		// A certified quantized skip is charged exactly like the
		// abandoned kernel call it replaces.
		if qp != nil && qset.PruneAt(qp, qcodes, qf32, i, r) {
			s.dist.Add(1)
			filteredQuant++
			continue
		}
		// Membership is all that matters, so the kernel may abandon at r.
		if s.dist.DistanceUpTo(q, it, r) <= r {
			out = append(out, it)
		}
	}
	if filteredQuant > 0 {
		s.TracePrune(obs.FilterQuantized, filteredQuant)
	}
	s.releaseQuant(qp, filteredQuant)
	st.Results = len(out)
	span.Done(&st)
	return out, st
}

// KNN returns the k items nearest to q in ascending distance order. It
// delegates to KNNWithStats.
func (s *Scan[T]) KNN(q T, k int) []index.Neighbor[T] {
	out, _ := s.KNNWithStats(q, k)
	return out
}

// KNNWithStats is KNN plus the trivial breakdown of a scan.
func (s *Scan[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], index.SearchStats) {
	span := s.StartQuery(obs.KindKNN)
	var st index.SearchStats
	if k <= 0 || len(s.items) == 0 {
		span.Done(&st)
		return nil, st
	}
	qp := s.prepareQuant(q)
	qset, qcodes, qf32 := s.qset, s.qcodes, s.qf32
	filteredQuant := 0
	h := heapx.NewKBest[T](k)
	for i, it := range s.items {
		st.Candidates++
		st.Computed++
		s.TraceDistance(1)
		tau := h.Threshold()
		// A certified quantized skip is charged exactly like the
		// abandoned kernel call it replaces.
		if qp != nil && qset.PruneAt(qp, qcodes, qf32, i, tau) {
			s.dist.Add(1)
			filteredQuant++
			continue
		}
		// Push ignores anything ≥ the current k-th best, so the kernel
		// may abandon at τ (exact while the heap is still filling).
		h.Push(it, s.dist.DistanceUpTo(q, it, tau))
	}
	if filteredQuant > 0 {
		s.TracePrune(obs.FilterQuantized, filteredQuant)
	}
	s.releaseQuant(qp, filteredQuant)
	out := h.Sorted()
	st.Results = len(out)
	span.Done(&st)
	return out, st
}
