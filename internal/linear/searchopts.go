package linear

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

var _ index.Searcher[int] = (*Scan[int])(nil)

// Search is the unified query entry point (index.Searcher). With
// zero-valued SearchOptions it runs the exact scan, byte-identical to
// RangeWithStats / KNNWithStats. A scan has no pruning, so Epsilon
// changes nothing here; Budget truncates the scan after the allowed
// number of computations and Patience stops kNN after the configured
// number of consecutive non-improving candidates. Workers and Bound
// are not supported by this structure and are ignored.
func (s *Scan[T]) Search(req index.Query[T]) index.Result[T] {
	if req.K > 0 {
		if !req.Opts.Approximate() {
			nb, st := s.KNNWithStats(req.Point, req.K)
			return index.Result[T]{Neighbors: nb, Stats: st}
		}
		return s.knnApprox(req.Point, req.K, req.Opts)
	}
	if !req.Opts.Approximate() {
		out, st := s.RangeWithStats(req.Point, req.Radius)
		return index.Result[T]{Items: out, Stats: st}
	}
	return s.rangeApprox(req.Point, req.Radius, req.Opts)
}

func (s *Scan[T]) rangeApprox(q T, r float64, o index.SearchOptions) index.Result[T] {
	span := s.StartQuery(obs.KindRange)
	var st index.SearchStats
	a := index.StartApprox(o)
	var out []T
	if r >= 0 {
		for _, it := range s.items {
			if !a.Pay(1) {
				break
			}
			st.Candidates++
			st.Computed++
			s.TraceDistance(1)
			if s.dist.DistanceUpTo(q, it, r) <= r {
				out = append(out, it)
			}
		}
	}
	a.Finish(&st)
	st.Results = len(out)
	span.Done(&st)
	return index.Result[T]{Items: out, Stats: st}
}

func (s *Scan[T]) knnApprox(q T, k int, o index.SearchOptions) index.Result[T] {
	span := s.StartQuery(obs.KindKNN)
	var st index.SearchStats
	if k <= 0 || len(s.items) == 0 {
		span.Done(&st)
		return index.Result[T]{Stats: st}
	}
	a := index.StartApprox(o)
	h := heapx.NewKBest[T](k)
	for _, it := range s.items {
		if a.Stop() || !a.Pay(1) {
			break
		}
		tau := h.Threshold()
		st.Candidates++
		st.Computed++
		s.TraceDistance(1)
		h.Push(it, s.dist.DistanceUpTo(q, it, tau))
		a.LeafDone(h.Threshold() < tau, h.Full())
	}
	out := h.Sorted()
	a.Finish(&st)
	st.Results = len(out)
	span.Done(&st)
	return index.Result[T]{Neighbors: out, Stats: st}
}
