package linear

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/quant"
)

func quantVecs(seed uint64, n, dim int) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0x7777))
	items := make([][]float64, n)
	for i := range items {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = v
	}
	return items
}

// TestQuantizeEquivalence pins the pre-filter contract on the linear
// scan: byte-identical results, order, SearchStats and counter deltas
// with the filter on or off. The scan is the simplest host — every
// item is a candidate, so a pruned item must still cost one charged
// computation.
func TestQuantizeEquivalence(t *testing.T) {
	metrics := []struct {
		name string
		fn   metric.DistanceFunc[[]float64]
	}{
		{"l1", metric.L1},
		{"l2", metric.L2},
		{"linf", metric.LInf},
	}
	for _, dim := range []int{6, 30} {
		items := quantVecs(uint64(20+dim), 800, dim)
		queries := quantVecs(uint64(50+dim), 5, dim)
		queries = append(queries, items[11])
		radii := []float64{0.25, 0.8}
		if dim == 30 {
			radii = []float64{1.0, 1.9}
		}
		for _, m := range metrics {
			for _, mode := range []quant.Mode{quant.SQ8, quant.F32} {
				name := map[int]string{6: "dim6", 30: "dim30"}[dim] + "/" + m.name + "/" + mode.String()
				t.Run(name, func(t *testing.T) {
					distP := metric.NewCounter(m.fn)
					plain := New(items, distP)
					distQ := metric.NewCounter(m.fn)
					quantized := New(items, distQ)
					if err := quantized.EnableQuantize(mode); err != nil {
						t.Fatal(err)
					}
					if quantized.Quantized() == nil {
						t.Fatal("pre-filter did not arm on a quantizable scan")
					}
					for qi, q := range queries {
						for _, r := range radii {
							p0, q0 := distP.Count(), distQ.Count()
							resP, stP := plain.RangeWithStats(q, r)
							resQ, stQ := quantized.RangeWithStats(q, r)
							if len(resP) != len(resQ) {
								t.Fatalf("q%d r=%v: %d results plain vs %d quantized", qi, r, len(resP), len(resQ))
							}
							for i := range resP {
								for j := range resP[i] {
									if resP[i][j] != resQ[i][j] {
										t.Fatalf("q%d r=%v: result %d differs", qi, r, i)
									}
								}
							}
							if stP != stQ {
								t.Errorf("q%d r=%v: stats differ:\nplain %+v\nquant %+v", qi, r, stP, stQ)
							}
							if pd, qd := distP.Count()-p0, distQ.Count()-q0; pd != qd {
								t.Errorf("q%d r=%v: counter delta differs: %d vs %d", qi, r, pd, qd)
							}
						}
						for _, k := range []int{1, 7} {
							p0, q0 := distP.Count(), distQ.Count()
							nbP, stP := plain.KNNWithStats(q, k)
							nbQ, stQ := quantized.KNNWithStats(q, k)
							if len(nbP) != len(nbQ) {
								t.Fatalf("q%d k=%d: %d neighbors plain vs %d quantized", qi, k, len(nbP), len(nbQ))
							}
							for i := range nbP {
								if nbP[i].Dist != nbQ[i].Dist {
									t.Errorf("q%d k=%d: neighbor %d dist differs", qi, k, i)
									break
								}
							}
							if stP != stQ {
								t.Errorf("q%d k=%d: stats differ:\nplain %+v\nquant %+v", qi, k, stP, stQ)
							}
							if pd, qd := distP.Count()-p0, distQ.Count()-q0; pd != qd {
								t.Errorf("q%d k=%d: counter delta differs: %d vs %d", qi, k, pd, qd)
							}
						}
					}
				})
			}
		}
	}
}

// TestQuantizeLifecycle pins teardown, mode errors and telemetry on
// the scan.
func TestQuantizeLifecycle(t *testing.T) {
	items := quantVecs(5, 900, 10)
	sc := New(items, metric.NewCounter(metric.L2))
	if err := sc.EnableQuantize(quant.Mode(42)); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := sc.EnableQuantize(quant.SQ8); err != nil {
		t.Fatal(err)
	}
	if s := sc.Quantized(); s == nil || s.ModeOf() != quant.SQ8 {
		t.Fatal("sq8 filter did not arm")
	}
	ob := obs.NewObserver(1)
	sc.SetObserver(ob)
	for _, q := range quantVecs(6, 10, 10) {
		sc.Range(q, 0.3)
		sc.KNN(q, 4)
	}
	if ob.Snapshot().Search.FilteredByQuantized == 0 {
		t.Error("observer saw no quantize-pruned candidates")
	}
	if err := sc.EnableQuantize(quant.Off); err != nil {
		t.Fatal(err)
	}
	if sc.Quantized() != nil {
		t.Fatal("Off did not tear the filter down")
	}

	// Angular has no quantized shape: the scan must stay unfiltered.
	ang := New(items, metric.NewCounter(metric.Angular))
	if err := ang.EnableQuantize(quant.SQ8); err != nil {
		t.Fatal(err)
	}
	if ang.Quantized() != nil {
		t.Fatal("filter armed for a metric with no quantized shape")
	}
}
