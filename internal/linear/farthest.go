package linear

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
)

// RangeFarther returns every item at distance ≥ r from q, computing
// exactly Len() distances.
func (s *Scan[T]) RangeFarther(q T, r float64) []T {
	var out []T
	for _, it := range s.items {
		if s.dist.Distance(q, it) >= r {
			out = append(out, it)
		}
	}
	return out
}

// KFarthest returns the k items farthest from q in descending distance
// order.
func (s *Scan[T]) KFarthest(q T, k int) []index.Neighbor[T] {
	if k <= 0 || len(s.items) == 0 {
		return nil
	}
	h := heapx.NewKLargest[T](k)
	for _, it := range s.items {
		h.Push(it, s.dist.Distance(q, it))
	}
	return h.Sorted()
}
