package laesa

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"

	"mvptree/internal/cascade"
	"mvptree/internal/metric"
	"mvptree/internal/wire"
)

// Persistence for pivot tables. The table is the expensive part —
// pivots × n distance computations — so reloading it is the whole
// point.

// ItemEncoder serializes one item.
type ItemEncoder[T any] func(T) ([]byte, error)

// ItemDecoder deserializes one item.
type ItemDecoder[T any] func([]byte) (T, error)

const saveMagic = "LAESA1"

// Save writes the table to w. The metric is not serialized.
func (t *Table[T]) Save(w io.Writer, enc ItemEncoder[T]) error {
	var payload bytes.Buffer
	pw := wire.NewWriter(&payload)
	writeItems := func(items []T) error {
		pw.Int(len(items))
		for _, it := range items {
			b, err := enc(it)
			if err != nil {
				return fmt.Errorf("laesa: encoding item: %w", err)
			}
			pw.Bytes(b)
		}
		return pw.Err()
	}
	if err := writeItems(t.items); err != nil {
		return err
	}
	pivots := make([]T, t.Pivots())
	for j := range pivots {
		pivots[j] = t.filter.Pivot(j)
	}
	if err := writeItems(pivots); err != nil {
		return err
	}
	for j := range pivots {
		pw.Floats(t.filter.Row(j))
	}
	if err := pw.Flush(); err != nil {
		return err
	}
	ww := wire.NewWriter(w)
	ww.Bytes([]byte(saveMagic))
	ww.Bytes(payload.Bytes())
	ww.Uvarint(uint64(crc32.ChecksumIEEE(payload.Bytes())))
	return ww.Flush()
}

// Load reads a table written by Save. dist must wrap the same metric
// the table was built with.
func Load[T any](r io.Reader, dist *metric.Counter[T], dec ItemDecoder[T]) (*Table[T], error) {
	outer := wire.NewReader(r)
	if string(outer.Bytes()) != saveMagic {
		return nil, fmt.Errorf("laesa: bad magic (not a pivot-table stream)")
	}
	payload := outer.Bytes()
	sum := outer.Uvarint()
	if err := outer.Err(); err != nil {
		return nil, err
	}
	if uint64(crc32.ChecksumIEEE(payload)) != sum {
		return nil, fmt.Errorf("laesa: checksum mismatch (corrupt stream)")
	}
	rr := wire.NewReader(bytes.NewReader(payload))
	readItems := func() ([]T, error) {
		count := rr.Int()
		if err := rr.Err(); err != nil {
			return nil, err
		}
		out := make([]T, count)
		for i := range out {
			b := rr.Bytes()
			if err := rr.Err(); err != nil {
				return nil, err
			}
			it, err := dec(b)
			if err != nil {
				return nil, fmt.Errorf("laesa: decoding item: %w", err)
			}
			out[i] = it
		}
		return out, nil
	}
	t := &Table[T]{dist: dist}
	var err error
	if t.items, err = readItems(); err != nil {
		return nil, err
	}
	pivots, err := readItems()
	if err != nil {
		return nil, err
	}
	if len(pivots) > len(t.items) {
		return nil, fmt.Errorf("laesa: %d pivots for %d items (corrupt stream)", len(pivots), len(t.items))
	}
	rows := make([][]float64, len(pivots))
	for j := range rows {
		row := rr.Floats()
		if err := rr.Err(); err != nil {
			return nil, err
		}
		if len(row) != len(t.items) {
			return nil, fmt.Errorf("laesa: table row %d has %d entries for %d items", j, len(row), len(t.items))
		}
		rows[j] = row
	}
	if len(pivots) > 0 {
		if t.filter, err = cascade.NewFilter(pivots, rows, len(pivots)); err != nil {
			return nil, fmt.Errorf("laesa: %w", err)
		}
	}
	return t, nil
}
