package laesa

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func TestRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 1))
	w := testutil.NewVectorWorkload(rng, 400, 8, 12, metric.L2)
	for _, opts := range []Options{{Pivots: 1, Build: Build{Seed: 7}}, {Pivots: 8, Build: Build{Seed: 7}}, {Pivots: 64, Build: Build{Seed: 7}}} {
		c := metric.NewCounter(w.Dist)
		tbl, err := New(w.Items, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckRange(t, "laesa", tbl, w, []float64{0, 0.1, 0.3, 0.6, 1.0, 2.0})
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(62, 1))
	w := testutil.NewVectorWorkload(rng, 300, 6, 10, metric.L2)
	c := metric.NewCounter(w.Dist)
	tbl, err := New(w.Items, c, Options{Pivots: 12, Build: Build{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckKNN(t, "laesa", tbl, w, []int{1, 2, 5, 17, 300, 1000})
}

func TestDuplicateHeavyData(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 1))
	w := testutil.NewClumpedWorkload(rng, 500, 5, 8, metric.L2)
	c := metric.NewCounter(w.Dist)
	tbl, err := New(w.Items, c, Options{Pivots: 10, Build: Build{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckRange(t, "laesa-clumped", tbl, w, []float64{0, 0.01, 0.05, 0.5, 3})
	testutil.CheckKNN(t, "laesa-clumped", tbl, w, []int{1, 3, 10})
	testutil.CheckContainsAllOnce(t, "laesa-clumped", tbl, w, 1e6)
}

func TestPivotsCappedAtN(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	tbl, err := New([][]float64{{1}, {2}, {3}}, dist, Options{Pivots: 100})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Pivots() != 3 {
		t.Errorf("Pivots() = %d, want 3", tbl.Pivots())
	}
	if tbl.BuildCost() != 9 {
		t.Errorf("BuildCost = %d, want 9 (3 pivots × 3 items)", tbl.BuildCost())
	}
}

func TestEmptyAndInvalid(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	tbl, err := New(nil, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 || tbl.Range([]float64{0}, 5) != nil || tbl.KNN([]float64{0}, 2) != nil {
		t.Error("empty table misbehaves")
	}
	if _, err := New([][]float64{{1}}, dist, Options{Pivots: -1}); err == nil {
		t.Error("negative Pivots accepted")
	}
}

func TestMorePivotsFilterMore(t *testing.T) {
	rng := rand.New(rand.NewPCG(64, 1))
	w := testutil.NewVectorWorkload(rng, 3000, 6, 20, metric.L2)
	cost := func(p int) int64 {
		c := metric.NewCounter(w.Dist)
		tbl, err := New(w.Items, c, Options{Pivots: p, Build: Build{Seed: 5}})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, q := range w.Queries {
			c.Reset()
			tbl.Range(q, 0.2)
			total += c.Count()
		}
		return total
	}
	few, many := cost(2), cost(32)
	if many >= few {
		t.Errorf("32 pivots cost %d ≥ 2 pivots cost %d; pivot filtering broken", many, few)
	}
}
