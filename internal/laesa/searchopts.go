package laesa

import (
	"mvptree/internal/cascade"
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

var _ index.Searcher[int] = (*Table[int])(nil)

// Search is the unified query entry point (index.Searcher). With
// zero-valued SearchOptions it runs the exact scan, byte-identical to
// RangeWithStats / KNNWithStats (which remain as thin wrappers over
// the same code paths); Epsilon, Budget or Patience switch to the
// approximate scan below. Workers and Bound are not supported by this
// structure and are ignored.
func (t *Table[T]) Search(req index.Query[T]) index.Result[T] {
	if req.K > 0 {
		if !req.Opts.Approximate() {
			nb, s := t.KNNWithStats(req.Point, req.K)
			return index.Result[T]{Neighbors: nb, Stats: s}
		}
		return t.knnApprox(req.Point, req.K, req.Opts)
	}
	if !req.Opts.Approximate() {
		out, s := t.RangeWithStats(req.Point, req.Radius)
		return index.Result[T]{Items: out, Stats: s}
	}
	return t.rangeApprox(req.Point, req.Radius, req.Opts)
}

// queryPivotsBudgeted is queryPivots under a budget: it registers
// pivot distances only while the budget allows. A cache with fewer
// registered pivots yields looser (but still valid) lower bounds.
func (t *Table[T]) queryPivotsBudgeted(q T, a *index.Approx) *cascade.Cache {
	c := t.filter.Get()
	for j := 0; j < t.filter.Pivots(); j++ {
		if !a.Pay(1) {
			break
		}
		c.Register(int32(j), t.dist.Distance(q, t.filter.Pivot(j)))
	}
	return c
}

// rangeApprox filters against the shrunken radius rp = r/(1+ε) while
// acceptance keeps the full r, and debits the budget before every
// computation (pivot distances included). Every reported item is
// within r; every item within rp is guaranteed reported.
func (t *Table[T]) rangeApprox(q T, r float64, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 || len(t.items) == 0 {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	rp := a.Shrink(r)
	c := t.queryPivotsBudgeted(q, &a)
	s.VantagePoints = c.Registered()
	t.TraceDistance(c.Registered())
	var out []T
	for i, it := range t.items {
		if a.Stop() {
			break
		}
		s.Candidates++
		if t.filter.LowerBound(c, int32(i)) > rp {
			s.FilteredByD++
			t.TracePrune(obs.FilterD, 1)
			continue
		}
		if !a.Pay(1) {
			s.Candidates--
			break
		}
		s.Computed++
		t.TraceDistance(1)
		if t.dist.DistanceUpTo(q, it, r) <= r {
			out = append(out, it)
		}
	}
	t.filter.Put(c)
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Items: out, Stats: s}
}

// knnApprox visits candidates in ascending lower-bound order and stops
// once the next bound reaches τ/(1+ε), the budget runs out, or
// patience sees the configured number of consecutive candidates that
// fail to tighten τ.
func (t *Table[T]) knnApprox(q T, k int, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || len(t.items) == 0 {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	c := t.queryPivotsBudgeted(q, &a)
	s.VantagePoints = c.Registered()
	t.TraceDistance(c.Registered())
	var queue heapx.NodeQueue[int]
	for i := range t.items {
		queue.PushNode(i, t.filter.LowerBound(c, int32(i)))
	}
	t.filter.Put(c)
	best := heapx.NewKBest[T](k)
	for !a.Stop() {
		i, lb, ok := queue.PopNode()
		if !ok || lb >= a.Shrink(best.Threshold()) {
			break
		}
		if !a.Pay(1) {
			break
		}
		tau := best.Threshold()
		s.Computed++
		t.TraceDistance(1)
		best.Push(t.items[i], t.dist.DistanceUpTo(q, t.items[i], tau))
		a.LeafDone(best.Threshold() < tau, best.Full())
	}
	s.Candidates = len(t.items)
	s.FilteredByD = s.Candidates - s.Computed
	if s.FilteredByD > 0 {
		t.TracePrune(obs.FilterD, s.FilteredByD)
	}
	out := best.Sorted()
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Neighbors: out, Stats: s}
}
