package laesa

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"mvptree/internal/codec"
	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 8))
	vecs := testutil.RandomVectors(rng, 400, 6)
	c := metric.NewCounter(metric.L2)
	orig, err := New(vecs, c, Options{Pivots: 12, Build: Build{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, codec.EncodeVector); err != nil {
		t.Fatal(err)
	}
	c2 := metric.NewCounter(metric.L2)
	loaded, err := Load(&buf, c2, codec.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Count() != 0 {
		t.Errorf("loading computed %d distances (table rebuild is the thing to avoid)", c2.Count())
	}
	if loaded.Len() != orig.Len() || loaded.Pivots() != orig.Pivots() {
		t.Fatal("shape changed across save/load")
	}
	for qi := 0; qi < 5; qi++ {
		q := vecs[qi*13]
		for _, r := range []float64{0.1, 0.4, 1.0} {
			a, b := orig.Range(q, r), loaded.Range(q, r)
			if len(a) != len(b) {
				t.Fatalf("Range(r=%g): %d vs %d", r, len(a), len(b))
			}
		}
		// Query costs must match exactly: same pivots, same table.
		c.Reset()
		orig.Range(q, 0.3)
		c2.Reset()
		loaded.Range(q, 0.3)
		if c.Count() != c2.Count() {
			t.Fatalf("query cost differs after reload: %d vs %d", c.Count(), c2.Count())
		}
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	c := metric.NewCounter(metric.L2)
	orig, err := New(nil, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, codec.EncodeVector); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, c, codec.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 || loaded.Range([]float64{0}, 1) != nil {
		t.Error("empty table misbehaves after reload")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(72, 8))
	vecs := testutil.RandomVectors(rng, 50, 3)
	c := metric.NewCounter(metric.L2)
	orig, err := New(vecs, c, Options{Pivots: 4, Build: Build{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, codec.EncodeVector); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for _, i := range []int{8, len(valid) / 2, len(valid) - 2} {
		data := append([]byte(nil), valid...)
		data[i] ^= 0x77
		if _, err := Load(bytes.NewReader(data), c, codec.DecodeVector); err == nil {
			t.Errorf("byte %d flipped: Load succeeded", i)
		}
	}
}
