// Package laesa implements a pivot-table index in the spirit of Shasha &
// Wang's pre-computed distance technique [SW90], which the paper reviews
// in §3.2. The full [SW90] table stores all O(n²) pairwise distances;
// that is exactly what the paper calls "overwhelming for larger
// domains", so — like the LAESA family that followed — this
// implementation stores the distances from every item to a fixed set of
// p pivots, an O(n·p) table.
//
// A query computes its distance to each pivot, derives for every item
// the lower bound max_j |d(q, pivot_j) − table[j][item]| and computes a
// real distance only for items whose bound does not already exclude
// them. This makes the filtering power of pre-computed distances — the
// same mechanism the mvp-tree moves into its leaves — measurable in
// isolation.
//
// The pivot machinery itself — the greedy max-min selection, the rows,
// the per-query registered-distance cache and the lower-bound consult —
// lives in internal/cascade; this package is the flat-table index built
// directly on that shared core, which the tree structures consult as a
// leaf filter via their EnableCascade option.
//
// Queries (Range, KNN and their variants) read only immutable state and
// are safe to run concurrently against one instance; the shared
// distance counter is atomic. The per-query pivot-distance scratch is
// pooled on the filter, so steady-state queries allocate only the
// result set.
package laesa

import (
	"errors"

	"mvptree/internal/build"
	"mvptree/internal/cascade"
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
)

// SearchStats is the shared per-query filtering breakdown
// (index.SearchStats), aliased here so laesa call sites match the other
// index packages. The table is flat, so NodesVisited/LeavesVisited/
// ShellsPruned stay zero; VantagePoints counts the per-query pivot
// distances, Candidates is the full item count, and FilteredByD counts
// items the pivot lower bound excluded without a real computation.
type SearchStats = index.SearchStats

// Build is the shared construction options (Workers, Seed) every index
// package embeds; see build.Options.
type Build = build.Options

// Options configure construction of the pivot table.
type Options struct {
	// Build holds the shared construction knobs: Workers spreads each
	// pivot row's distance computations over a bounded pool (the table
	// built is identical for every worker count), and Seed seeds pivot
	// selection (maximum-minimum-distance greedy selection from a
	// random start).
	Build
	// Pivots is the number of pivot items, the p of the table.
	// Default 16 (capped at the number of items).
	Pivots int
}

// Table is a pivot-table index over a fixed item set. The embedded
// obs.Hooks let callers attach an Observer and/or Tracer; with neither
// attached the query paths pay only nil checks.
type Table[T any] struct {
	obs.Hooks
	items      []T
	filter     *cascade.Filter[T] // pivots + rows + pooled query caches
	dist       *metric.Counter[T]
	buildStats build.Stats
}

var _ index.StatsIndex[int] = (*Table[int])(nil)

// New builds the pivot table over items using the counted metric dist.
func New[T any](items []T, dist *metric.Counter[T], opts Options) (*Table[T], error) {
	t, _, err := NewWithStats(items, dist, opts)
	return t, err
}

// NewWithStats is New plus the shared construction report: distance
// computations, wall time, node count (here: pivots) and depth
// (build.Stats).
func NewWithStats[T any](items []T, dist *metric.Counter[T], opts Options) (*Table[T], build.Stats, error) {
	if opts.Pivots == 0 {
		opts.Pivots = 16
	}
	if err := opts.Build.Validate("laesa"); err != nil {
		return nil, build.Stats{}, err
	}
	if opts.Pivots < 1 {
		return nil, build.Stats{}, errors.New("laesa: Pivots must be at least 1")
	}
	p := min(opts.Pivots, len(items))
	t := &Table[T]{
		items: make([]T, len(items)),
		dist:  dist,
	}
	copy(t.items, items)
	if len(items) == 0 {
		return t, build.Stats{}, nil
	}
	b := build.Start(dist, opts.Build)

	// Greedy max-min pivot selection (cascade.GreedySelect): start
	// random, then repeatedly take the item farthest from all chosen
	// pivots. Each pivot costs one batched distance pass over all
	// items, which doubles as the pivot's table row.
	start := build.NewRNG(opts.Seed, 0x6c61657361).Rand().IntN(len(items))
	pivots, rows := cascade.GreedySelect(b, t.items, p, start)
	f, err := cascade.NewFilter(pivots, rows, len(pivots))
	if err != nil {
		return nil, build.Stats{}, err
	}
	t.filter = f
	t.buildStats = b.Finish()
	return t, t.buildStats, nil
}

// Len reports the number of indexed items.
func (t *Table[T]) Len() int { return len(t.items) }

// Counter returns the counted metric the table measures distances with.
func (t *Table[T]) Counter() *metric.Counter[T] { return t.dist }

// DistanceCount reports the cumulative distance computations on the
// table's counter (build + queries), the paper's cost metric.
func (t *Table[T]) DistanceCount() int64 { return t.dist.Count() }

// Pivots reports the number of pivots actually used.
func (t *Table[T]) Pivots() int {
	if t.filter == nil {
		return 0
	}
	return t.filter.Pivots()
}

// Filter exposes the underlying cascade filter (pivots, rows, pooled
// caches); nil for an empty table.
func (t *Table[T]) Filter() *cascade.Filter[T] { return t.filter }

// BuildCost reports the number of distance computations made during
// construction (pivots × n).
func (t *Table[T]) BuildCost() int64 { return t.buildStats.Distances }

// BuildStats reports the full construction report.
func (t *Table[T]) BuildStats() build.Stats { return t.buildStats }

// queryPivots fills a pooled cascade.Cache with the query's exact
// distances to all pivots. The caller must return the cache with
// t.filter.Put when the scan finishes.
func (t *Table[T]) queryPivots(q T) *cascade.Cache {
	c := t.filter.Get()
	for j := 0; j < t.filter.Pivots(); j++ {
		c.Register(int32(j), t.dist.Distance(q, t.filter.Pivot(j)))
	}
	return c
}

// Range returns every indexed item within distance r of q. It delegates
// to RangeWithStats so there is exactly one scan implementation.
func (t *Table[T]) Range(q T, r float64) []T {
	out, _ := t.RangeWithStats(q, r)
	return out
}

// RangeWithStats is Range plus the per-query breakdown.
func (t *Table[T]) RangeWithStats(q T, r float64) ([]T, SearchStats) {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 || len(t.items) == 0 {
		span.Done(&s)
		return nil, s
	}
	c := t.queryPivots(q)
	s.VantagePoints = c.Registered()
	t.TraceDistance(c.Registered())
	var out []T
	for i, it := range t.items {
		s.Candidates++
		if t.filter.LowerBound(c, int32(i)) > r {
			s.FilteredByD++
			t.TracePrune(obs.FilterD, 1)
			continue
		}
		s.Computed++
		t.TraceDistance(1)
		// Survivors only need membership, so the kernel may abandon at
		// r. Pivot distances (queryPivots) stay exact: the lower bound
		// uses them two-sidedly.
		if t.dist.DistanceUpTo(q, it, r) <= r {
			out = append(out, it)
		}
	}
	t.filter.Put(c)
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

// KNN returns the k nearest indexed items: candidates are visited in
// ascending lower-bound order and the scan stops as soon as the next
// lower bound cannot beat the current k-th distance. It delegates to
// KNNWithStats (single scan implementation).
func (t *Table[T]) KNN(q T, k int) []index.Neighbor[T] {
	out, _ := t.KNNWithStats(q, k)
	return out
}

// KNNWithStats is KNN plus the per-query breakdown. Items never popped
// (or popped after the bound closed) count as FilteredByD: the pivot
// lower bound excluded them without a real distance computation.
func (t *Table[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], SearchStats) {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || len(t.items) == 0 {
		span.Done(&s)
		return nil, s
	}
	c := t.queryPivots(q)
	s.VantagePoints = c.Registered()
	t.TraceDistance(c.Registered())
	var queue heapx.NodeQueue[int]
	for i := range t.items {
		queue.PushNode(i, t.filter.LowerBound(c, int32(i)))
	}
	t.filter.Put(c)
	best := heapx.NewKBest[T](k)
	for {
		i, lb, ok := queue.PopNode()
		if !ok || !best.Accepts(lb) {
			break
		}
		s.Computed++
		t.TraceDistance(1)
		// Push ignores anything ≥ the current k-th best, so the kernel
		// may abandon at τ (exact while the heap is still filling).
		best.Push(t.items[i], t.dist.DistanceUpTo(q, t.items[i], best.Threshold()))
	}
	s.Candidates = len(t.items)
	s.FilteredByD = s.Candidates - s.Computed
	if s.FilteredByD > 0 {
		t.TracePrune(obs.FilterD, s.FilteredByD)
	}
	out := best.Sorted()
	s.Results = len(out)
	span.Done(&s)
	return out, s
}
