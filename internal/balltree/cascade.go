package balltree

import "mvptree/internal/cascade"

// EnableCascade builds the cross-query bound cascade for the tree
// (internal/cascade): a breadth-first walk collects the first
// opts.Pivots set centers as cascade pivots (stamping their nodes) and
// assigns every leaf item a contiguous id, then precomputes the pivot ×
// item distance rows through the tree's own counter. Afterwards a
// query evaluating a stamped center computes the exact distance instead
// of the bounded kernel — exact is itself a valid bounded kernel, so
// every membership and prune decision (and the distance count) is
// unchanged — registers it, and skips leaf candidates whose
// triangle-inequality lower bound over the registered distances already
// exceeds the query threshold. The center/radius tree's leaf scans have
// no filter of their own (Computed == Candidates without the cascade),
// so this is the structure's first stored-distance leaf filter.
// Results are byte-identical with the cascade on or off; per-query
// distance counts can only decrease.
//
// The precomputation is lazy — nothing is spent unless this is called —
// and costs Pivots × LeafItems distance computations, reported by
// Cascade().BuildDistances. A tree too small to hold leaf items (or
// centers) is left uncascaded silently. EnableCascade is not
// synchronized with in-flight queries: enable the cascade before
// serving.
func (t *Tree[T]) EnableCascade(opts cascade.Options) error {
	if t.root == nil {
		return nil
	}
	b, err := cascade.NewBuilder[T](opts)
	if err != nil {
		return err
	}
	queue := []*node[T]{t.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.leaf {
			n.casBase = b.AddItems(n.items)
			continue
		}
		for j := range n.centers {
			st := b.AddPivot(n.centers[j])
			if st == 0 {
				break // pivot budget exhausted; later centers stay unstamped
			}
			if n.casC == nil {
				n.casC = make([]int32, len(n.centers))
			}
			n.casC[j] = st
		}
		for _, c := range n.children {
			if c != nil {
				queue = append(queue, c)
			}
		}
	}
	if b.NumPivots() == 0 || b.NumItems() == 0 {
		return nil
	}
	f, err := b.Build(t.dist)
	if err != nil {
		return err
	}
	t.cas = f
	return nil
}

// Cascade returns the tree's cascade filter, nil unless EnableCascade
// built one.
func (t *Tree[T]) Cascade() *cascade.Filter[T] { return t.cas }
