// Package balltree implements the second method of Burkhard & Keller
// [BK73], as the paper describes it in §3.2: "they partition the space
// into a number of sets of keys. For each set, they arbitrarily pick a
// center key, and calculate the radius which is the maximum distance
// between the center and any other key in the set. The keys in a set
// are partitioned into other sets recursively creating a multi-way
// tree. Each node in the tree keeps the centers and the radii for the
// sets of keys indexed below." It is the ancestor of ball trees and
// M-trees.
//
// The paper notes the partitioning strategy "was not discussed and was
// left as a parameter"; this implementation assigns each key to its
// closest center (centers picked greedily far apart, as in GNAT), which
// keeps radii small — the quantity the center/radius bound prunes on.
//
// Queries (Range, KNN and their variants) read only immutable state and
// are safe to run concurrently against one instance; the shared
// distance counter is atomic.
package balltree

import (
	"errors"

	"mvptree/internal/build"
	"mvptree/internal/cascade"
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
)

// SearchStats is the shared per-query filtering breakdown
// (index.SearchStats), aliased here so balltree call sites match the
// other index packages. Center distances count as VantagePoints and a
// set skipped by the center/radius bound as one ShellsPruned; with no
// stored leaf distances, Computed == Candidates.
type SearchStats = index.SearchStats

// Build is the shared construction options (Workers, Seed) every index
// package embeds; see build.Options.
type Build = build.Options

// Options configure construction.
type Options struct {
	// Build holds the shared construction knobs (Workers, Seed); the
	// tree built is identical for every worker count.
	Build
	// Fanout is the number of sets each node's keys are partitioned
	// into. Default 8.
	Fanout int
	// LeafCapacity is the maximum bucket size. Default 16.
	LeafCapacity int
}

// Tree is a center/radius multi-way tree over a fixed item set. The
// embedded obs.Hooks let callers attach an Observer and/or Tracer; with
// neither attached the query paths pay only nil checks.
type Tree[T any] struct {
	obs.Hooks
	root       *node[T]
	dist       *metric.Counter[T]
	cas        *cascade.Filter[T]
	size       int
	buildStats build.Stats
}

var _ index.StatsIndex[int] = (*Tree[int])(nil)

// node holds, per child set, its center (a real data point, stored in
// the child), and the set's radius — the maximum distance from the
// center to any key of the set, exactly [BK73]'s invariant.
type node[T any] struct {
	centers  []T
	radii    []float64
	children []*node[T]
	leaf     bool
	items    []T

	// Cascade stamps (see cascade.go; all zero until EnableCascade).
	casC    []int32 // casC[j] stamps centers[j]; nil when no center is a pivot
	casBase int32
}

// New builds a tree over items using the counted metric dist.
func New[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], error) {
	t, _, err := NewWithStats(items, dist, opts)
	return t, err
}

// NewWithStats is New plus the shared construction report: distance
// computations, wall time, node count and depth (build.Stats).
func NewWithStats[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], build.Stats, error) {
	if opts.Fanout == 0 {
		opts.Fanout = 8
	}
	if opts.LeafCapacity == 0 {
		opts.LeafCapacity = 16
	}
	if err := opts.Build.Validate("balltree"); err != nil {
		return nil, build.Stats{}, err
	}
	if opts.Fanout < 2 {
		return nil, build.Stats{}, errors.New("balltree: Fanout must be at least 2")
	}
	if opts.LeafCapacity < 1 {
		return nil, build.Stats{}, errors.New("balltree: LeafCapacity must be at least 1")
	}
	t := &Tree[T]{dist: dist, size: len(items)}
	work := make([]T, len(items))
	copy(work, items)
	b := build.Start(dist, opts.Build)
	t.root = t.build(b, work, build.NewRNG(opts.Seed, 0x62616c6c), &opts, 0)
	t.buildStats = b.Finish()
	return t, t.buildStats, nil
}

// build consumes work. src is the splittable RNG fixed by this subtree's
// position, so the tree is identical for every worker count.
func (t *Tree[T]) build(b *build.Builder[T], work []T, src build.RNG, opts *Options, depth int) *node[T] {
	if len(work) == 0 {
		return nil
	}
	b.Node(depth)
	if len(work) <= opts.LeafCapacity || len(work) <= opts.Fanout {
		leaf := &node[T]{leaf: true, items: make([]T, len(work))}
		copy(leaf.items, work)
		return leaf
	}
	k := opts.Fanout
	// Greedy far-apart centers: random first, then repeatedly the key
	// farthest from all chosen centers. Each selection round is one
	// batched distance pass over all keys (the same computations as the
	// key-at-a-time loop, so the cost counter is unchanged).
	centerIdx := make([]int, 0, k)
	minDist := make([]float64, len(work))
	first := src.Rand().IntN(len(work))
	centerIdx = append(centerIdx, first)
	b.Measure(work[first], func(i int) T { return work[i] }, minDist)
	row := make([]float64, len(work))
	for len(centerIdx) < k {
		far := 0
		for i := range work {
			if minDist[i] > minDist[far] {
				far = i
			}
		}
		centerIdx = append(centerIdx, far)
		b.Measure(work[far], func(i int) T { return work[i] }, row)
		for i := range work {
			if row[i] < minDist[i] {
				minDist[i] = row[i]
			}
		}
	}
	isCenter := make(map[int]bool, k)
	n := &node[T]{centers: make([]T, k), radii: make([]float64, k)}
	for j, ci := range centerIdx {
		n.centers[j] = work[ci]
		isCenter[ci] = true
	}
	// Assign each remaining key to its closest center and track radii,
	// batched one center at a time.
	rest := make([]T, 0, len(work)-k)
	for i, it := range work {
		if !isCenter[i] {
			rest = append(rest, it)
		}
	}
	dmat := make([][]float64, k) // dmat[j][i] = d(rest[i], centers[j])
	for j := 0; j < k; j++ {
		dmat[j] = make([]float64, len(rest))
		b.Measure(n.centers[j], func(i int) T { return rest[i] }, dmat[j])
	}
	sets := make([][]T, k)
	for i, it := range rest {
		bestJ, bestD := 0, 0.0
		for j := 0; j < k; j++ {
			if d := dmat[j][i]; j == 0 || d < bestD {
				bestJ, bestD = j, d
			}
		}
		sets[bestJ] = append(sets[bestJ], it)
		if bestD > n.radii[bestJ] {
			n.radii[bestJ] = bestD
		}
	}
	n.children = make([]*node[T], k)
	b.Fork(k, func(j int) {
		n.children[j] = t.build(b, sets[j], src.Child(j), opts, depth+1)
	})
	return n
}

// Len reports the number of indexed items.
func (t *Tree[T]) Len() int { return t.size }

// Counter returns the counted metric the tree measures distances with.
func (t *Tree[T]) Counter() *metric.Counter[T] { return t.dist }

// DistanceCount reports the cumulative distance computations on the
// tree's counter (build + queries), the paper's cost metric.
func (t *Tree[T]) DistanceCount() int64 { return t.dist.Count() }

// BuildCost reports construction distance computations.
func (t *Tree[T]) BuildCost() int64 { return t.buildStats.Distances }

// BuildStats reports the full construction report.
func (t *Tree[T]) BuildStats() build.Stats { return t.buildStats }

// Range returns every indexed item within distance r of q. A set with
// center c and radius ρ is skipped when d(q,c) − ρ > r: by the triangle
// inequality every key x of the set has d(q,x) ≥ d(q,c) − d(c,x) ≥
// d(q,c) − ρ.
func (t *Tree[T]) Range(q T, r float64) []T {
	out, _ := t.RangeWithStats(q, r)
	return out
}

// RangeWithStats is Range plus the per-query breakdown. It is the only
// range traversal implementation — Range delegates here.
func (t *Tree[T]) RangeWithStats(q T, r float64) ([]T, SearchStats) {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 {
		span.Done(&s)
		return nil, s
	}
	var out []T
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
	}
	t.rangeNode(t.root, q, r, cc, &out, &s)
	if cc != nil {
		t.cas.Put(cc)
	}
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

func (t *Tree[T]) rangeNode(n *node[T], q T, r float64, cc *cascade.Cache, out *[]T, s *SearchStats) {
	if n == nil {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.leaf)
	if n.leaf {
		s.LeavesVisited++
		cas, base := t.cas, n.casBase
		useCas := cc != nil && cc.Registered() > 0
		filtered := 0
		for i, it := range n.items {
			s.Candidates++
			if useCas {
				if lb := cas.LowerBound(cc, base+int32(i)); lb > r {
					filtered++
					continue
				}
			}
			s.Computed++
			t.TraceDistance(1)
			// Membership only, so the kernel may abandon at r.
			if t.dist.DistanceUpTo(q, it, r) <= r {
				*out = append(*out, it)
			}
		}
		if filtered > 0 {
			s.FilteredByCascade += filtered
			t.TracePrune(obs.FilterCascade, filtered)
		}
		return
	}
	for j, c := range n.centers {
		// A center distance is used one-sidedly — membership and the
		// prune test d−ρ > r — so abandoning past r+ρ forces the same
		// prune the exact distance would. When the center is a cascade
		// pivot the exact distance is computed instead (exact is itself
		// a valid bounded kernel, so every decision is unchanged) and
		// shared with the leaf filter.
		var d float64
		if cc != nil && n.casC != nil && n.casC[j] != 0 && cc.Wants() {
			d = t.dist.Distance(q, c)
			cc.Register(n.casC[j]-1, d)
		} else {
			d = t.dist.DistanceUpTo(q, c, r+n.radii[j])
		}
		s.VantagePoints++
		t.TraceDistance(1)
		if d <= r {
			*out = append(*out, c)
		}
		if d-n.radii[j] <= r {
			t.rangeNode(n.children[j], q, r, cc, out, s)
		} else if n.children[j] != nil {
			s.ShellsPruned++
			t.TracePrune(obs.FilterShell, 1)
		}
	}
}

// KNN returns the k nearest indexed items by best-first traversal on
// the lower bound max(0, d(q,c) − ρ). It delegates to KNNWithStats
// (single traversal implementation).
func (t *Tree[T]) KNN(q T, k int) []index.Neighbor[T] {
	out, _ := t.KNNWithStats(q, k)
	return out
}

// KNNWithStats is KNN plus the per-query breakdown.
func (t *Tree[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], SearchStats) {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	best := heapx.NewKBest[T](k)
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
		defer t.cas.Put(cc)
	}
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(bound) {
			break
		}
		s.NodesVisited++
		t.TraceNode(n.leaf)
		if n.leaf {
			s.LeavesVisited++
			cas, base := t.cas, n.casBase
			useCas := cc != nil && cc.Registered() > 0
			filtered := 0
			for i, it := range n.items {
				s.Candidates++
				if useCas {
					// A candidate whose lower bound the heap would
					// reject cannot change the result set: the bounded
					// kernel below would return a value ≥ the bound.
					if clb := cas.LowerBound(cc, base+int32(i)); !best.Accepts(clb) {
						filtered++
						continue
					}
				}
				s.Computed++
				t.TraceDistance(1)
				// Push ignores anything ≥ the k-th best: abandon at τ.
				best.Push(it, t.dist.DistanceUpTo(q, it, best.Threshold()))
			}
			if filtered > 0 {
				s.FilteredByCascade += filtered
				t.TracePrune(obs.FilterCascade, filtered)
			}
			continue
		}
		for j, c := range n.centers {
			// One-sided use (τ in place of r): abandoning past τ+ρ
			// rejects the center and prunes the child either way. A
			// stamped center is computed exactly instead (same
			// decisions, see cascade.go) and shared with the cascade.
			var d float64
			if cc != nil && n.casC != nil && n.casC[j] != 0 && cc.Wants() {
				d = t.dist.Distance(q, c)
				cc.Register(n.casC[j]-1, d)
			} else {
				d = t.dist.DistanceUpTo(q, c, best.Threshold()+n.radii[j])
			}
			best.Push(c, d)
			s.VantagePoints++
			t.TraceDistance(1)
			if n.children[j] == nil {
				continue
			}
			lb := d - n.radii[j]
			if lb < bound {
				lb = bound
			}
			if best.Accepts(lb) {
				queue.PushNode(n.children[j], lb)
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
	}
	out := best.Sorted()
	s.Results = len(out)
	span.Done(&s)
	return out, s
}
