// Package balltree implements the second method of Burkhard & Keller
// [BK73], as the paper describes it in §3.2: "they partition the space
// into a number of sets of keys. For each set, they arbitrarily pick a
// center key, and calculate the radius which is the maximum distance
// between the center and any other key in the set. The keys in a set
// are partitioned into other sets recursively creating a multi-way
// tree. Each node in the tree keeps the centers and the radii for the
// sets of keys indexed below." It is the ancestor of ball trees and
// M-trees.
//
// The paper notes the partitioning strategy "was not discussed and was
// left as a parameter"; this implementation assigns each key to its
// closest center (centers picked greedily far apart, as in GNAT), which
// keeps radii small — the quantity the center/radius bound prunes on.
//
// Queries (Range, KNN and their variants) read only immutable state and
// are safe to run concurrently against one instance; the shared
// distance counter is atomic.
package balltree

import (
	"errors"
	"math/rand/v2"

	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/metric"
)

// Options configure construction.
type Options struct {
	// Fanout is the number of sets each node's keys are partitioned
	// into. Default 8.
	Fanout int
	// LeafCapacity is the maximum bucket size. Default 16.
	LeafCapacity int
	// Seed seeds center selection.
	Seed uint64
}

// Tree is a center/radius multi-way tree over a fixed item set.
type Tree[T any] struct {
	root      *node[T]
	dist      *metric.Counter[T]
	size      int
	buildCost int64
}

var _ index.Index[int] = (*Tree[int])(nil)

// node holds, per child set, its center (a real data point, stored in
// the child), and the set's radius — the maximum distance from the
// center to any key of the set, exactly [BK73]'s invariant.
type node[T any] struct {
	centers  []T
	radii    []float64
	children []*node[T]
	leaf     bool
	items    []T
}

// New builds a tree over items using the counted metric dist.
func New[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], error) {
	if opts.Fanout == 0 {
		opts.Fanout = 8
	}
	if opts.LeafCapacity == 0 {
		opts.LeafCapacity = 16
	}
	if opts.Fanout < 2 {
		return nil, errors.New("balltree: Fanout must be at least 2")
	}
	if opts.LeafCapacity < 1 {
		return nil, errors.New("balltree: LeafCapacity must be at least 1")
	}
	t := &Tree[T]{dist: dist, size: len(items)}
	work := make([]T, len(items))
	copy(work, items)
	rng := rand.New(rand.NewPCG(opts.Seed, 0x62616c6c))
	before := dist.Count()
	t.root = t.build(work, rng, &opts)
	t.buildCost = dist.Count() - before
	return t, nil
}

func (t *Tree[T]) build(work []T, rng *rand.Rand, opts *Options) *node[T] {
	if len(work) == 0 {
		return nil
	}
	if len(work) <= opts.LeafCapacity || len(work) <= opts.Fanout {
		leaf := &node[T]{leaf: true, items: make([]T, len(work))}
		copy(leaf.items, work)
		return leaf
	}
	k := opts.Fanout
	// Greedy far-apart centers: random first, then repeatedly the key
	// farthest from all chosen centers.
	centerIdx := make([]int, 0, k)
	minDist := make([]float64, len(work))
	first := rng.IntN(len(work))
	centerIdx = append(centerIdx, first)
	for i := range work {
		minDist[i] = t.dist.Distance(work[i], work[first])
	}
	for len(centerIdx) < k {
		far := 0
		for i := range work {
			if minDist[i] > minDist[far] {
				far = i
			}
		}
		centerIdx = append(centerIdx, far)
		for i := range work {
			if d := t.dist.Distance(work[i], work[far]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	isCenter := make(map[int]bool, k)
	n := &node[T]{centers: make([]T, k), radii: make([]float64, k)}
	for j, ci := range centerIdx {
		n.centers[j] = work[ci]
		isCenter[ci] = true
	}
	// Assign each remaining key to its closest center and track radii.
	sets := make([][]T, k)
	for i, it := range work {
		if isCenter[i] {
			continue
		}
		bestJ, bestD := 0, 0.0
		for j := range n.centers {
			d := t.dist.Distance(it, n.centers[j])
			if j == 0 || d < bestD {
				bestJ, bestD = j, d
			}
		}
		sets[bestJ] = append(sets[bestJ], it)
		if bestD > n.radii[bestJ] {
			n.radii[bestJ] = bestD
		}
	}
	n.children = make([]*node[T], k)
	for j := range sets {
		n.children[j] = t.build(sets[j], rng, opts)
	}
	return n
}

// Len reports the number of indexed items.
func (t *Tree[T]) Len() int { return t.size }

// Counter returns the counted metric the tree measures distances with.
func (t *Tree[T]) Counter() *metric.Counter[T] { return t.dist }

// BuildCost reports construction distance computations.
func (t *Tree[T]) BuildCost() int64 { return t.buildCost }

// Range returns every indexed item within distance r of q. A set with
// center c and radius ρ is skipped when d(q,c) − ρ > r: by the triangle
// inequality every key x of the set has d(q,x) ≥ d(q,c) − d(c,x) ≥
// d(q,c) − ρ.
func (t *Tree[T]) Range(q T, r float64) []T {
	if r < 0 {
		return nil
	}
	var out []T
	t.rangeNode(t.root, q, r, &out)
	return out
}

func (t *Tree[T]) rangeNode(n *node[T], q T, r float64, out *[]T) {
	if n == nil {
		return
	}
	if n.leaf {
		for _, it := range n.items {
			if t.dist.Distance(q, it) <= r {
				*out = append(*out, it)
			}
		}
		return
	}
	for j, c := range n.centers {
		d := t.dist.Distance(q, c)
		if d <= r {
			*out = append(*out, c)
		}
		if d-n.radii[j] <= r {
			t.rangeNode(n.children[j], q, r, out)
		}
	}
}

// KNN returns the k nearest indexed items by best-first traversal on
// the lower bound max(0, d(q,c) − ρ).
func (t *Tree[T]) KNN(q T, k int) []index.Neighbor[T] {
	if k <= 0 || t.root == nil {
		return nil
	}
	best := heapx.NewKBest[T](k)
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(bound) {
			break
		}
		if n.leaf {
			for _, it := range n.items {
				best.Push(it, t.dist.Distance(q, it))
			}
			continue
		}
		for j, c := range n.centers {
			d := t.dist.Distance(q, c)
			best.Push(c, d)
			if n.children[j] == nil {
				continue
			}
			lb := d - n.radii[j]
			if lb < bound {
				lb = bound
			}
			if best.Accepts(lb) {
				queue.PushNode(n.children[j], lb)
			}
		}
	}
	return best.Sorted()
}
