package balltree

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

var _ index.Searcher[int] = (*Tree[int])(nil)

// Search is the unified query entry point (index.Searcher). With
// zero-valued SearchOptions it runs the exact traversal, byte-identical
// to RangeWithStats / KNNWithStats (which remain as thin wrappers over
// the same code paths); Epsilon, Budget or Patience switch to the
// approximate traversal below. Approximate traversals do not consult
// the cascade; Workers and Bound are not supported by this structure
// and are ignored.
func (t *Tree[T]) Search(req index.Query[T]) index.Result[T] {
	if req.K > 0 {
		if !req.Opts.Approximate() {
			nb, s := t.KNNWithStats(req.Point, req.K)
			return index.Result[T]{Neighbors: nb, Stats: s}
		}
		return t.knnApprox(req.Point, req.K, req.Opts)
	}
	if !req.Opts.Approximate() {
		out, s := t.RangeWithStats(req.Point, req.Radius)
		return index.Result[T]{Items: out, Stats: s}
	}
	return t.rangeApprox(req.Point, req.Radius, req.Opts)
}

// rangeApprox tests the ball prune d−ρ > rp against the shrunken
// radius rp = r/(1+ε) while acceptance keeps the full r, and debits
// the budget before every computation. Every reported item is within
// r; every item within rp is guaranteed reported.
func (t *Tree[T]) rangeApprox(q T, r float64, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	var out []T
	t.rangeNodeApprox(t.root, q, r, a.Shrink(r), &a, &out, &s)
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Items: out, Stats: s}
}

func (t *Tree[T]) rangeNodeApprox(n *node[T], q T, r, rp float64, a *index.Approx, out *[]T, s *SearchStats) {
	if n == nil || a.Stop() {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.leaf)
	if n.leaf {
		s.LeavesVisited++
		computed := 0
		for _, it := range n.items {
			if !a.Pay(1) {
				break
			}
			s.Candidates++
			computed++
			if t.dist.DistanceUpTo(q, it, r) <= r {
				*out = append(*out, it)
			}
		}
		s.Computed += computed
		if computed > 0 {
			t.TraceDistance(computed)
		}
		return
	}
	for j, c := range n.centers {
		if !a.Pay(1) {
			return
		}
		// Exact-path kernel bound (r + ρ): an abandoned value and the
		// true one land on the same side of the rp prune because
		// rp ≤ r.
		d := t.dist.DistanceUpTo(q, c, r+n.radii[j])
		s.VantagePoints++
		t.TraceDistance(1)
		if d <= r {
			*out = append(*out, c)
		}
		if d-n.radii[j] <= rp {
			t.rangeNodeApprox(n.children[j], q, r, rp, a, out, s)
			if a.Stop() {
				return
			}
		} else if n.children[j] != nil {
			s.ShellsPruned++
			t.TracePrune(obs.FilterShell, 1)
		}
	}
}

// knnApprox is best-first kNN with the approximation knobs: a child
// ball is discarded once its lower bound d−ρ reaches τ/(1+ε), the
// budget is debited before every computation, and patience stops the
// search after the configured number of consecutive leaves that fail
// to tighten τ.
func (t *Tree[T]) knnApprox(q T, k int, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	best := heapx.NewKBest[T](k)
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for !a.Stop() {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		tau := best.Threshold()
		if bound >= a.Shrink(tau) {
			break
		}
		s.NodesVisited++
		t.TraceNode(n.leaf)
		if n.leaf {
			s.LeavesVisited++
			computed := 0
			for _, it := range n.items {
				if !a.Pay(1) {
					break
				}
				s.Candidates++
				computed++
				best.Push(it, t.dist.DistanceUpTo(q, it, best.Threshold()))
			}
			s.Computed += computed
			if computed > 0 {
				t.TraceDistance(computed)
			}
			a.LeafDone(best.Threshold() < tau, best.Full())
			continue
		}
		paid := true
		for j, c := range n.centers {
			if !a.Pay(1) {
				paid = false
				break
			}
			d := t.dist.DistanceUpTo(q, c, best.Threshold()+n.radii[j])
			best.Push(c, d)
			s.VantagePoints++
			t.TraceDistance(1)
			if n.children[j] == nil {
				continue
			}
			lb := d - n.radii[j]
			if lb < bound {
				lb = bound
			}
			if lb < a.Shrink(best.Threshold()) {
				queue.PushNode(n.children[j], lb)
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
		if !paid {
			break
		}
	}
	out := best.Sorted()
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Neighbors: out, Stats: s}
}
