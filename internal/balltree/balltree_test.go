package balltree

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func TestRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(131, 1))
	w := testutil.NewVectorWorkload(rng, 400, 8, 12, metric.L2)
	for _, opts := range []Options{
		{Build: Build{Seed: 7}},
		{Fanout: 3, LeafCapacity: 4, Build: Build{Seed: 7}},
		{Fanout: 16, LeafCapacity: 32, Build: Build{Seed: 7}},
	} {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckRange(t, "ball", tree, w, []float64{0, 0.1, 0.3, 0.6, 1.0, 2.0})
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(132, 1))
	w := testutil.NewVectorWorkload(rng, 300, 6, 10, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Fanout: 5, LeafCapacity: 8, Build: Build{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckKNN(t, "ball", tree, w, []int{1, 2, 5, 17, 300, 1000})
}

func TestDuplicateHeavyData(t *testing.T) {
	rng := rand.New(rand.NewPCG(133, 1))
	w := testutil.NewClumpedWorkload(rng, 500, 5, 8, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Build: Build{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckRange(t, "ball-clumped", tree, w, []float64{0, 0.01, 0.05, 0.5, 3})
	testutil.CheckKNN(t, "ball-clumped", tree, w, []int{1, 3, 10})
	testutil.CheckContainsAllOnce(t, "ball-clumped", tree, w, 1e6)
}

func TestRadiusInvariant(t *testing.T) {
	// [BK73]'s defining invariant: every key of a set lies within the
	// set's recorded radius of its center.
	rng := rand.New(rand.NewPCG(134, 1))
	w := testutil.NewVectorWorkload(rng, 600, 6, 1, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Fanout: 4, LeafCapacity: 8, Build: Build{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	var check func(n *node[int])
	var collect func(n *node[int], f func(int))
	collect = func(n *node[int], f func(int)) {
		if n == nil {
			return
		}
		if n.leaf {
			for _, it := range n.items {
				f(it)
			}
			return
		}
		for j, c := range n.centers {
			f(c)
			collect(n.children[j], f)
		}
	}
	check = func(n *node[int]) {
		if n == nil || n.leaf {
			return
		}
		for j := range n.centers {
			collect(n.children[j], func(it int) {
				if d := w.Dist(it, n.centers[j]); d > n.radii[j]+1e-12 {
					t.Fatalf("key at distance %g from center, radius %g", d, n.radii[j])
				}
			})
			check(n.children[j])
		}
	}
	check(tree.root)
}

func TestTinyAndEdgeCases(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	for n := 0; n <= 10; n++ {
		items := make([][]float64, n)
		for i := range items {
			items[i] = []float64{float64(i)}
		}
		tree, err := New(items, dist, Options{Fanout: 3, LeafCapacity: 2})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Len() != n {
			t.Errorf("n=%d: Len() = %d", n, tree.Len())
		}
		if got := tree.Range([]float64{0}, 100); len(got) != n {
			t.Errorf("n=%d: full range = %d items", n, len(got))
		}
	}
	for _, opts := range []Options{{Fanout: 1}, {LeafCapacity: -1}} {
		if _, err := New([][]float64{{1}, {2}}, dist, opts); err == nil {
			t.Errorf("invalid options %+v accepted", opts)
		}
	}
}

func TestPrunesOnClusteredData(t *testing.T) {
	// Tight clusters are the ball tree's best case: small radii.
	rng := rand.New(rand.NewPCG(135, 1))
	w := testutil.NewClumpedWorkload(rng, 3000, 6, 15, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Fanout: 8, LeafCapacity: 16, Build: Build{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, q := range w.Queries {
		c.Reset()
		tree.Range(q, 0.05)
		total += c.Count()
	}
	if avg := float64(total) / float64(len(w.Queries)); avg > float64(w.Truth.Len())/2 {
		t.Errorf("avg cost %.0f ≥ n/2; ball tree not pruning on clustered data", avg)
	}
}
