package qexec

import (
	"math/rand/v2"
	"reflect"
	"runtime"
	"testing"

	"mvptree/internal/dataset"
	"mvptree/internal/index"
)

// TestRunBatchMatchesUnbatched pins the executor's Batch option: for
// every (Workers, Batch) combination, results, per-worker attribution,
// aggregated SearchStats and the Counter delta are byte-identical to
// the unbatched run — the shared traversal changes wall-clock time
// only.
func TestRunBatchMatchesUnbatched(t *testing.T) {
	tree, c, queries := testTree(t)
	const r, k = 0.5, 7

	c.Reset()
	wantR, wantRS, _ := RunRange[[]float64](tree, queries, r, Options{Workers: 1})
	c.Reset()
	wantK, wantKS, _ := RunKNN[[]float64](tree, queries, k, Options{Workers: 1})

	for _, workers := range []int{1, 3} {
		for _, batch := range []int{2, 8, 64} {
			opts := Options{Workers: workers, Batch: batch}
			c.Reset()
			gotR, statsR, err := RunRange[[]float64](tree, queries, r, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotR, wantR) {
				t.Errorf("W=%d B=%d: range results differ from unbatched", workers, batch)
			}
			if statsR.Distances != wantRS.Distances || statsR.Search != wantRS.Search {
				t.Errorf("W=%d B=%d: range stats differ: %d/%+v vs %d/%+v",
					workers, batch, statsR.Distances, statsR.Search, wantRS.Distances, wantRS.Search)
			}
			if statsR.Answered != len(queries) {
				t.Errorf("W=%d B=%d: answered %d of %d", workers, batch, statsR.Answered, len(queries))
			}
			for i, ok := range statsR.AnsweredMask {
				if !ok {
					t.Errorf("W=%d B=%d: AnsweredMask[%d] false after complete run", workers, batch, i)
				}
			}
			c.Reset()
			gotK, statsK, err := RunKNN[[]float64](tree, queries, k, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotK, wantK) {
				t.Errorf("W=%d B=%d: kNN results differ from unbatched", workers, batch)
			}
			if statsK.Distances != wantKS.Distances || statsK.Search != wantKS.Search {
				t.Errorf("W=%d B=%d: kNN stats differ", workers, batch)
			}
			// Striped attribution is unchanged by chunking.
			for w := range statsK.PerWorker {
				wantQ := (len(queries) - w + statsK.Workers - 1) / statsK.Workers
				if statsK.PerWorker[w].Queries != wantQ {
					t.Errorf("W=%d B=%d: worker %d answered %d, want %d",
						workers, batch, w, statsK.PerWorker[w].Queries, wantQ)
				}
			}
		}
	}
}

// TestRunBatchApproximate routes a budgeted batch through the Batch
// option: SearchBatch answers approximate members by per-query Search
// fallback, so results and the ExhaustedMask match the unbatched
// approximate run exactly.
func TestRunBatchApproximate(t *testing.T) {
	tree, c, queries := testTree(t)
	opts := Options{Workers: 1, Search: index.SearchOptions{Budget: 150}}
	c.Reset()
	want, wantStats, _ := RunRange[[]float64](tree, queries, 0.6, opts)

	optsB := opts
	optsB.Batch = 8
	c.Reset()
	got, gotStats, err := RunRange[[]float64](tree, queries, 0.6, optsB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("batched budgeted results differ from unbatched")
	}
	if gotStats.Distances != wantStats.Distances || gotStats.Search != wantStats.Search {
		t.Errorf("batched budgeted stats differ: %+v vs %+v", gotStats.Search, wantStats.Search)
	}
	if gotStats.ExhaustedMask == nil {
		t.Fatal("budgeted batch did not produce an ExhaustedMask")
	}
	if !reflect.DeepEqual(gotStats.ExhaustedMask, wantStats.ExhaustedMask) {
		t.Errorf("ExhaustedMask differs: %v vs %v", gotStats.ExhaustedMask, wantStats.ExhaustedMask)
	}
}

// TestOptionValidationTable pins the executor's option defaulting:
// Workers <= 0 means runtime.GOMAXPROCS(0), the worker count is capped
// at the batch size, and Batch/QueryWorkers interactions never change
// the answered-query accounting.
func TestOptionValidationTable(t *testing.T) {
	tree, _, _ := testTree(t)
	rng := rand.New(rand.NewPCG(35, 7))
	queries := dataset.UniformQueries(rng, 12, 8)
	gomax := runtime.GOMAXPROCS(0)
	cases := []struct {
		name        string
		opts        Options
		nq          int
		wantWorkers int
	}{
		{"zero defaults to GOMAXPROCS", Options{Workers: 0}, 12, min(gomax, 12)},
		{"negative defaults to GOMAXPROCS", Options{Workers: -4}, 12, min(gomax, 12)},
		{"explicit one", Options{Workers: 1}, 12, 1},
		{"capped at batch size", Options{Workers: 64}, 12, 12},
		{"empty batch still one worker", Options{Workers: 0}, 0, 1},
		{"batch option keeps worker math", Options{Workers: 3, Batch: 4}, 12, 3},
		{"batch with query workers", Options{Workers: 2, Batch: 4, QueryWorkers: 2}, 12, 2},
		{"batch of one is unbatched", Options{Workers: 2, Batch: 1}, 12, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, stats, err := RunRange[[]float64](tree, queries[:tc.nq], 0.4, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Workers != tc.wantWorkers {
				t.Errorf("Workers = %d, want %d", stats.Workers, tc.wantWorkers)
			}
			if len(res) != tc.nq || stats.Queries != tc.nq || stats.Answered != tc.nq {
				t.Errorf("answered %d/%d results for %d queries", stats.Answered, len(res), tc.nq)
			}
		})
	}
}
