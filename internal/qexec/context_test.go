package qexec

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/obs"
	"mvptree/internal/shard"
)

// slowIndex wraps a StatsIndex, sleeping per query so a short context
// deadline reliably lands mid-batch.
type slowIndex struct {
	index.StatsIndex[[]float64]
	delay time.Duration
}

func (s slowIndex) Range(q []float64, r float64) [][]float64 {
	time.Sleep(s.delay)
	return nil
}

func (s slowIndex) RangeWithStats(q []float64, r float64) ([][]float64, index.SearchStats) {
	time.Sleep(s.delay)
	return nil, index.SearchStats{}
}

func TestContextCancelStopsBatch(t *testing.T) {
	tree, _, queries := testTree(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts: nothing should run
	res, stats, err := RunRange[[]float64](tree, queries, 0.5, Options{Workers: 2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Answered != 0 {
		t.Fatalf("Answered = %d, want 0", stats.Answered)
	}
	if len(res) != len(queries) {
		t.Fatalf("results slice length %d, want %d (partially filled)", len(res), len(queries))
	}
}

func TestContextTimeoutMidBatch(t *testing.T) {
	tree, _, queries := testTree(t)
	slow := slowIndex{StatsIndex: tree, delay: 5 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 12*time.Millisecond)
	defer cancel()
	_, stats, err := RunRange[[]float64](slow, queries, 0.5, Options{Workers: 1, Context: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if stats.Answered == 0 || stats.Answered >= stats.Queries {
		t.Fatalf("Answered = %d of %d, want a partial batch", stats.Answered, stats.Queries)
	}
	// Without a deadline the same batch completes with no error.
	if _, stats, err := RunRange[[]float64](tree, queries, 0.5, Options{Workers: 2, Context: context.Background()}); err != nil || stats.Answered != stats.Queries {
		t.Fatalf("uncancelled run: err=%v Answered=%d/%d", err, stats.Answered, stats.Queries)
	}
}

// gatedIndex blocks selected queries on per-query gates and signals
// entry, so a test can park workers mid-query deterministically.
// Queries are told apart by their first coordinate.
type gatedIndex struct {
	index.StatsIndex[[]float64]
	gates   map[float64]chan struct{} // q[0] → gate the query waits on
	entered chan float64              // signals q[0] on query entry
}

func (g gatedIndex) RangeWithStats(q []float64, r float64) ([][]float64, index.SearchStats) {
	g.entered <- q[0]
	if gate, ok := g.gates[q[0]]; ok {
		<-gate
	}
	return [][]float64{q}, index.SearchStats{Results: 1}
}

// A cancelled multi-worker batch leaves non-contiguous filled slots:
// each worker stops at its own next pickup, so answered and unanswered
// slots interleave. Stats.AnsweredMask must tell them apart exactly.
//
// The schedule is pinned, not raced: with Workers=2, worker 0 owns the
// even slots and worker 1 the odd slots. Worker 0 parks inside query 0;
// worker 1 answers 1, then parks inside query 3. Once both are parked
// the context is cancelled and the gates open: the in-flight queries
// (0 and 3) finish — the contract lets traversals run to completion —
// and neither worker picks up again. Answered must be exactly {0, 1, 3}:
// slot 2 is a hole between answered slots 1 and 3.
func TestCancelledBatchAnsweredMask(t *testing.T) {
	tree, _, treeQueries := testTree(t)
	const n = 8
	queries := make([][]float64, n)
	for i := range queries {
		queries[i] = []float64{float64(i), 0}
	}
	g := gatedIndex{
		StatsIndex: tree,
		gates: map[float64]chan struct{}{
			0: make(chan struct{}),
			3: make(chan struct{}),
		},
		entered: make(chan float64, n),
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		res   [][][]float64
		stats Stats
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		res, stats, err := RunRange[[]float64](g, queries, 0.5, Options{Workers: 2, Context: ctx})
		done <- outcome{res, stats, err}
	}()

	// Wait until queries 0, 1 and 3 have entered (1 completes on its
	// own; 0 and 3 park on their gates), then cancel and release.
	seen := map[float64]bool{}
	for len(seen) < 3 {
		seen[<-g.entered] = true
	}
	if !seen[0] || !seen[1] || !seen[3] {
		t.Fatalf("unexpected entry set %v, want {0,1,3}", seen)
	}
	cancel()
	close(g.gates[0])
	close(g.gates[3])

	out := <-done
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", out.err)
	}
	want := map[int]bool{0: true, 1: true, 3: true}
	if len(out.stats.AnsweredMask) != n {
		t.Fatalf("mask length %d, want %d", len(out.stats.AnsweredMask), n)
	}
	answered := 0
	for i, ok := range out.stats.AnsweredMask {
		if ok != want[i] {
			t.Fatalf("AnsweredMask[%d] = %v, want %v (mask %v)", i, ok, want[i], out.stats.AnsweredMask)
		}
		if ok {
			answered++
			if len(out.res[i]) != 1 || out.res[i][0][0] != float64(i) {
				t.Fatalf("answered slot %d holds wrong result %v", i, out.res[i])
			}
		} else if out.res[i] != nil {
			t.Fatalf("unanswered slot %d is non-nil", i)
		}
	}
	if answered != out.stats.Answered {
		t.Fatalf("mask counts %d answered, Stats.Answered = %d", answered, out.stats.Answered)
	}
	// The defining property: the filled slots are NOT a contiguous
	// prefix — slot 2 is a hole between answered slots 1 and 3 — so a
	// caller cannot use Stats.Answered as a cut-off index.
	if out.stats.AnsweredMask[2] || !out.stats.AnsweredMask[3] {
		t.Fatalf("expected a non-contiguous fill: mask %v", out.stats.AnsweredMask)
	}

	// A completed run reports an all-true mask.
	_, stats, err := RunRange[[]float64](tree, treeQueries, 0.5, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range stats.AnsweredMask {
		if !ok {
			t.Fatalf("completed run: AnsweredMask[%d] false", i)
		}
	}
}

// Attaching one Observer to both the index hooks and the executor would
// record every query twice; the executor must refuse the run instead.
func TestSharedObserverRefused(t *testing.T) {
	tree, _, queries := testTree(t)
	o := obs.NewObserver(2)
	tree.SetObserver(o)
	defer tree.SetObserver(nil)
	if _, _, err := RunRange[[]float64](tree, queries, 0.5, Options{Workers: 2, Observer: o}); !errors.Is(err, ErrSharedObserver) {
		t.Fatalf("range err = %v, want ErrSharedObserver", err)
	}
	if _, _, err := RunKNN[[]float64](tree, queries, 5, Options{Workers: 2, Observer: o}); !errors.Is(err, ErrSharedObserver) {
		t.Fatalf("knn err = %v, want ErrSharedObserver", err)
	}
	// A distinct executor observer is fine, and both observers record.
	o2 := obs.NewObserver(2)
	if _, _, err := RunRange[[]float64](tree, queries, 0.5, Options{Workers: 2, Observer: o2}); err != nil {
		t.Fatalf("distinct observer refused: %v", err)
	}
	if s := o2.Snapshot(); s.Queries != int64(len(queries)) {
		t.Fatalf("executor observer saw %d queries, want %d", s.Queries, len(queries))
	}
	if s := o.Snapshot(); s.Queries != int64(len(queries)) {
		t.Fatalf("index observer saw %d queries, want %d", s.Queries, len(queries))
	}
}

// QueryWorkers routes range queries through RangeParallelWithStats and
// sharded KNN through the opportunistic mode; results must match the
// sequential executor exactly (range) and by distance (KNN).
func TestQueryWorkersIntraQueryParallelism(t *testing.T) {
	tree, _, queries := testTree(t)
	seq, seqStats, err := RunRange[[]float64](tree, queries, 0.5, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, parStats, err := RunRange[[]float64](tree, queries, 0.5, Options{Workers: 1, QueryWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("QueryWorkers changed range results")
	}
	if parStats.Search != seqStats.Search {
		t.Fatalf("QueryWorkers changed aggregated stats: %+v vs %+v", parStats.Search, seqStats.Search)
	}

	// Sharded index: KNN with QueryWorkers > 1 takes the opportunistic
	// path; neighbor distances must match the deterministic mode.
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	data := make([][]float64, 600)
	for i := range data {
		data[i] = []float64{float64(i % 83), float64(i % 47)}
	}
	dist := func(a, b int) float64 { return metric.L2(data[a], data[b]) }
	x, err := shard.New(items, metric.NewCounter(dist), shard.MVP[int](mvp.Options{Partitions: 2, LeafCapacity: 8}), shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	qids := []int{500, 511, 547, 580}
	seqK, _, err := RunKNN[int](x, qids, 7, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parK, _, err := RunKNN[int](x, qids, 7, Options{Workers: 1, QueryWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqK {
		if len(seqK[i]) != len(parK[i]) {
			t.Fatalf("knn query %d: %d results, want %d", i, len(parK[i]), len(seqK[i]))
		}
		for j := range seqK[i] {
			if seqK[i][j].Dist != parK[i][j].Dist {
				t.Fatalf("knn query %d: dist[%d] %g vs %g", i, j, parK[i][j].Dist, seqK[i][j].Dist)
			}
		}
	}
}
