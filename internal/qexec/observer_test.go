package qexec

import (
	"reflect"
	"testing"

	"mvptree/internal/obs"
)

// TestObserverSnapshotDeterministicAcrossWorkers is the observability
// contract of the executor: with a fresh Observer per run, every
// snapshot field except the latency histograms (which reflect real
// wall-clock timings) is identical for every worker count — the shard
// merge is exact, not approximate.
func TestObserverSnapshotDeterministicAcrossWorkers(t *testing.T) {
	tree, _, queries := testTree(t)
	const r, k = 0.5, 7

	strip := func(s obs.Snapshot) obs.Snapshot {
		// Latency varies run to run; zero it so the comparison covers
		// exactly the deterministic fields.
		s.Range.Latency = obs.KindSnapshot{}.Latency
		s.Range.LatencyTotal, s.Range.P50, s.Range.P90, s.Range.P99 = 0, 0, 0, 0
		s.KNN.Latency = obs.KindSnapshot{}.Latency
		s.KNN.LatencyTotal, s.KNN.P50, s.KNN.P90, s.KNN.P99 = 0, 0, 0, 0
		return s
	}

	var want obs.Snapshot
	for i, workers := range []int{1, 2, 3, 8} {
		o := obs.NewObserver(workers)
		_, rstats, _ := RunRange[[]float64](tree, queries, r, Options{Workers: workers, Observer: o})
		_, kstats, _ := RunKNN[[]float64](tree, queries, k, Options{Workers: workers, Observer: o})
		snap := strip(o.Snapshot())
		if snap.Queries != int64(2*len(queries)) {
			t.Fatalf("workers=%d: observer saw %d queries, want %d", workers, snap.Queries, 2*len(queries))
		}
		if got := rstats.Distances + kstats.Distances; snap.Distances != got {
			t.Fatalf("workers=%d: observer saw %d distances, executor measured %d",
				workers, snap.Distances, got)
		}
		if i == 0 {
			want = snap
			continue
		}
		if !reflect.DeepEqual(snap, want) {
			t.Fatalf("workers=%d: snapshot differs from workers=1:\n got %+v\nwant %+v",
				workers, snap, want)
		}
	}
}

// TestStatsWallMeasured checks that batch wall time is populated.
func TestStatsWallMeasured(t *testing.T) {
	tree, _, queries := testTree(t)
	_, stats, _ := RunRange[[]float64](tree, queries, 0.5, Options{Workers: 2})
	if stats.Wall <= 0 {
		t.Fatalf("batch wall time not measured: %v", stats.Wall)
	}
}
