// Package qexec is a worker-pool batch-query executor over any
// index.Index. It exists because the indexes in this repository are
// read-mostly after a static build and — now that the distance Counter
// is atomic and every query path has been audited free of shared
// mutable state — a single shared index can legally serve many queries
// at once. qexec turns that property into throughput: a batch of
// queries is striped over a configurable number of worker goroutines,
// each answering its share against the one shared index.
//
// Three guarantees make the executor fit the paper's methodology:
//
//   - Deterministic results: results[i] always answers queries[i], and
//     each individual query is answered by the exact same traversal the
//     sequential path runs, so result sets (and their order within one
//     query) do not depend on the worker count.
//
//   - Deterministic cost: the number of distance computations of a
//     query does not depend on what other queries run beside it, so the
//     batch total — measured as an atomic Counter delta — is identical
//     for every worker count. Parallelism changes wall-clock time only,
//     never the paper's cost metric.
//
//   - Deterministic attribution: queries are striped (worker w answers
//     queries w, w+W, w+2W, ...), so per-worker SearchStats aggregates
//     are reproducible run to run, not an artifact of scheduling.
package qexec

import (
	"runtime"
	"sync"

	"mvptree/internal/index"
	"mvptree/internal/metric"
)

// Options configure a batch run.
type Options struct {
	// Workers is the number of goroutines answering queries. Values
	// <= 0 mean runtime.GOMAXPROCS(0). A worker count of 1 reproduces
	// the plain sequential loop.
	Workers int
}

// WorkerStats is the per-worker slice of a batch: how many queries the
// worker answered and, when the index exposes the stats query variants
// (RangeWithStats / KNNWithStats, as the mvp-tree does), the sum of its
// queries' SearchStats.
type WorkerStats struct {
	Queries int
	Search  index.SearchStats
}

// Stats summarize one batch run.
type Stats struct {
	// Queries is the batch size, Workers the worker count actually
	// used (capped at the batch size).
	Queries int
	Workers int
	// Distances is the Counter delta across the whole batch when the
	// index exposes its Counter, 0 otherwise. The Counter is shared
	// and atomic, so this is exact for the batch as a whole; for
	// per-query attribution use the SearchStats aggregates.
	Distances int64
	// HasSearch reports whether the index exposed a stats query
	// variant; Search and the PerWorker Search fields are only
	// meaningful when it is true.
	HasSearch bool
	// Search is the SearchStats sum over the whole batch.
	Search index.SearchStats
	// PerWorker is indexed by worker; worker w answered queries
	// w, w+Workers, w+2·Workers, ...
	PerWorker []WorkerStats
}

// counterIndex is satisfied by every tree in this repository; it lets
// the executor measure the batch's distance-computation total.
type counterIndex[T any] interface {
	Counter() *metric.Counter[T]
}

// rangeStatser and knnStatser are satisfied by indexes offering
// per-query stats breakdowns with the shared index.SearchStats shape.
type rangeStatser[T any] interface {
	RangeWithStats(q T, r float64) ([]T, index.SearchStats)
}

type knnStatser[T any] interface {
	KNNWithStats(q T, k int) ([]index.Neighbor[T], index.SearchStats)
}

// RunRange answers a range query at radius r for every query point,
// returning results[i] = idx.Range(queries[i], r) plus batch stats.
func RunRange[T any](idx index.Index[T], queries []T, r float64, opts Options) ([][]T, Stats) {
	if rs, ok := idx.(rangeStatser[T]); ok {
		return run(idx, queries, opts, true, func(q T) ([]T, index.SearchStats) {
			return rs.RangeWithStats(q, r)
		})
	}
	return run(idx, queries, opts, false, func(q T) ([]T, index.SearchStats) {
		return idx.Range(q, r), index.SearchStats{}
	})
}

// RunKNN answers a k-nearest-neighbor query for every query point,
// returning results[i] = idx.KNN(queries[i], k) plus batch stats.
func RunKNN[T any](idx index.Index[T], queries []T, k int, opts Options) ([][]index.Neighbor[T], Stats) {
	if ks, ok := idx.(knnStatser[T]); ok {
		return run(idx, queries, opts, true, func(q T) ([]index.Neighbor[T], index.SearchStats) {
			return ks.KNNWithStats(q, k)
		})
	}
	return run(idx, queries, opts, false, func(q T) ([]index.Neighbor[T], index.SearchStats) {
		return idx.KNN(q, k), index.SearchStats{}
	})
}

// run stripes the batch over the worker pool. one answers a single
// query; hasStats reports whether its SearchStats are real.
func run[T any, R any](idx index.Index[T], queries []T, opts Options, hasStats bool,
	one func(q T) (R, index.SearchStats)) ([]R, Stats) {

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	stats := Stats{
		Queries:   len(queries),
		Workers:   workers,
		HasSearch: hasStats,
		PerWorker: make([]WorkerStats, workers),
	}
	var ctr *metric.Counter[T]
	var before int64
	if ci, ok := idx.(counterIndex[T]); ok {
		ctr = ci.Counter()
		before = ctr.Count()
	}
	results := make([]R, len(queries))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &stats.PerWorker[w]
			for i := w; i < len(queries); i += workers {
				res, s := one(queries[i])
				results[i] = res
				ws.Queries++
				if hasStats {
					ws.Search.Add(s)
				}
			}
		}(w)
	}
	wg.Wait()
	if ctr != nil {
		stats.Distances = ctr.Count() - before
	}
	for _, ws := range stats.PerWorker {
		stats.Search.Add(ws.Search)
	}
	return results, stats
}
