// Package qexec is a worker-pool batch-query executor over any
// index.Index. It exists because the indexes in this repository are
// read-mostly after a static build and — now that the distance Counter
// is atomic and every query path has been audited free of shared
// mutable state — a single shared index can legally serve many queries
// at once. qexec turns that property into throughput: a batch of
// queries is striped over a configurable number of worker goroutines,
// each answering its share against the one shared index.
//
// Three guarantees make the executor fit the paper's methodology:
//
//   - Deterministic results: results[i] always answers queries[i], and
//     each individual query is answered by the exact same traversal the
//     sequential path runs, so result sets (and their order within one
//     query) do not depend on the worker count.
//
//   - Deterministic cost: the number of distance computations of a
//     query does not depend on what other queries run beside it, so the
//     batch total — measured as an atomic Counter delta — is identical
//     for every worker count. Parallelism changes wall-clock time only,
//     never the paper's cost metric.
//
//   - Deterministic attribution: queries are striped (worker w answers
//     queries w, w+W, w+2W, ...), so per-worker SearchStats aggregates
//     are reproducible run to run, not an artifact of scheduling.
//
// Indexes are probed for the exported index.StatsIndex surface (every
// structure in this repository implements it); when present, the
// executor uses the WithStats query variants and reports per-query
// filtering breakdowns plus the exact distance-count delta.
package qexec

import (
	"runtime"
	"sync"
	"time"

	"mvptree/internal/index"
	"mvptree/internal/obs"
)

// Options configure a batch run.
type Options struct {
	// Workers is the number of goroutines answering queries. Values
	// <= 0 mean runtime.GOMAXPROCS(0). A worker count of 1 reproduces
	// the plain sequential loop.
	Workers int
	// Observer, when non-nil, receives one observation per query:
	// worker w records into shard w (obs.Observer.ObserveShard), so
	// recording is contention-free and the merged snapshot's totals are
	// exact for every worker count. Latency histograms reflect real
	// timings and therefore vary run to run; every other snapshot field
	// is deterministic. This is independent of any Observer attached to
	// the index itself via its obs.Hooks — attach in one place or the
	// other, not both, unless double counting is intended.
	Observer *obs.Observer
}

// WorkerStats is the per-worker slice of a batch: how many queries the
// worker answered and, when the index exposes the stats query variants
// (index.StatsIndex, as every structure in this repository does), the
// sum of its queries' SearchStats.
type WorkerStats struct {
	Queries int
	Search  index.SearchStats
}

// Stats summarize one batch run.
type Stats struct {
	// Queries is the batch size, Workers the worker count actually
	// used (capped at the batch size).
	Queries int
	Workers int
	// Wall is the wall-clock time of the whole batch, measured around
	// the worker pool. Unlike Distances it depends on the worker count
	// and machine load.
	Wall time.Duration
	// Distances is the DistanceCount delta across the whole batch when
	// the index is an index.StatsIndex, 0 otherwise. The underlying
	// counter is shared and atomic, so this is exact for the batch as a
	// whole; for per-query attribution use the SearchStats aggregates.
	Distances int64
	// HasSearch reports whether the index exposed the stats query
	// variants; Search and the PerWorker Search fields are only
	// meaningful when it is true.
	HasSearch bool
	// Search is the SearchStats sum over the whole batch.
	Search index.SearchStats
	// PerWorker is indexed by worker; worker w answered queries
	// w, w+Workers, w+2·Workers, ...
	PerWorker []WorkerStats
}

// RunRange answers a range query at radius r for every query point,
// returning results[i] = idx.Range(queries[i], r) plus batch stats.
func RunRange[T any](idx index.Index[T], queries []T, r float64, opts Options) ([][]T, Stats) {
	if si, ok := idx.(index.StatsIndex[T]); ok {
		return run(si, queries, opts, obs.KindRange, true, func(q T) ([]T, index.SearchStats) {
			return si.RangeWithStats(q, r)
		})
	}
	return run[T](nil, queries, opts, obs.KindRange, false, func(q T) ([]T, index.SearchStats) {
		return idx.Range(q, r), index.SearchStats{}
	})
}

// RunKNN answers a k-nearest-neighbor query for every query point,
// returning results[i] = idx.KNN(queries[i], k) plus batch stats.
func RunKNN[T any](idx index.Index[T], queries []T, k int, opts Options) ([][]index.Neighbor[T], Stats) {
	if si, ok := idx.(index.StatsIndex[T]); ok {
		return run(si, queries, opts, obs.KindKNN, true, func(q T) ([]index.Neighbor[T], index.SearchStats) {
			return si.KNNWithStats(q, k)
		})
	}
	return run[T](nil, queries, opts, obs.KindKNN, false, func(q T) ([]index.Neighbor[T], index.SearchStats) {
		return idx.KNN(q, k), index.SearchStats{}
	})
}

// run stripes the batch over the worker pool. one answers a single
// query; si is non-nil exactly when the index exposes index.StatsIndex,
// in which case hasStats is true and the per-query SearchStats are
// real.
func run[T any, R any](si index.StatsIndex[T], queries []T, opts Options, kind obs.Kind,
	hasStats bool, one func(q T) (R, index.SearchStats)) ([]R, Stats) {

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	stats := Stats{
		Queries:   len(queries),
		Workers:   workers,
		HasSearch: hasStats,
		PerWorker: make([]WorkerStats, workers),
	}
	var before int64
	if si != nil {
		before = si.DistanceCount()
	}
	observer := opts.Observer
	results := make([]R, len(queries))
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &stats.PerWorker[w]
			for i := w; i < len(queries); i += workers {
				var qStart time.Time
				if observer != nil {
					qStart = time.Now()
				}
				res, s := one(queries[i])
				if observer != nil {
					observer.ObserveShard(w, kind, time.Since(qStart), s)
				}
				results[i] = res
				ws.Queries++
				if hasStats {
					ws.Search.Add(s)
				}
			}
		}(w)
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	if si != nil {
		stats.Distances = si.DistanceCount() - before
	}
	for _, ws := range stats.PerWorker {
		stats.Search.Add(ws.Search)
	}
	return results, stats
}
