// Package qexec is a worker-pool batch-query executor over any
// index.Index. It exists because the indexes in this repository are
// read-mostly after a static build and — now that the distance Counter
// is atomic and every query path has been audited free of shared
// mutable state — a single shared index can legally serve many queries
// at once. qexec turns that property into throughput: a batch of
// queries is striped over a configurable number of worker goroutines,
// each answering its share against the one shared index.
//
// Three guarantees make the executor fit the paper's methodology:
//
//   - Deterministic results: results[i] always answers queries[i], and
//     each individual query is answered by the exact same traversal the
//     sequential path runs, so result sets (and their order within one
//     query) do not depend on the worker count.
//
//   - Deterministic cost: the number of distance computations of a
//     query does not depend on what other queries run beside it, so the
//     batch total — measured as an atomic Counter delta — is identical
//     for every worker count. Parallelism changes wall-clock time only,
//     never the paper's cost metric. (One opt-in exception: KNN with
//     QueryWorkers > 1 over a sharded index uses opportunistic
//     cross-shard bound sharing, whose count varies with scheduling —
//     see Options.QueryWorkers.)
//
//   - Deterministic attribution: queries are striped (worker w answers
//     queries w, w+W, w+2W, ...), so per-worker SearchStats aggregates
//     are reproducible run to run, not an artifact of scheduling.
//
// Indexes are probed for the exported index.StatsIndex surface (every
// structure in this repository implements it); when present, the
// executor uses the WithStats query variants and reports per-query
// filtering breakdowns plus the exact distance-count delta.
package qexec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"mvptree/internal/index"
	"mvptree/internal/obs"
)

// ErrSharedObserver is returned when Options.Observer is the same
// *obs.Observer already attached to the index's own hooks: each query
// would then be recorded twice (once by the index's query span, once
// by the executor), silently doubling every snapshot total. Attach the
// observer in one place or the other.
var ErrSharedObserver = errors.New("qexec: Observer is already attached to the index; attach it to the executor or the index, not both")

// Options configure a batch run.
type Options struct {
	// Workers is the number of goroutines answering queries. Values
	// <= 0 mean runtime.GOMAXPROCS(0). A worker count of 1 reproduces
	// the plain sequential loop.
	Workers int
	// Batch is the shared-traversal micro-batch size. When > 1 and the
	// index implements index.BatchSearcher, each worker answers its
	// stripe in groups of up to Batch queries through one SearchBatch
	// call: the tree is descended once per group with blocked distance
	// kernels instead of once per query. Results, order, per-query
	// SearchStats and the batch's Distances delta are byte-identical to
	// the unbatched run (the BatchSearcher contract); batching changes
	// memory traffic and wall-clock time only. Two behavioral edges
	// move from one query to one group: Context cancellation latency,
	// and the Observer's per-query latency samples (a group's wall time
	// is amortized equally over its members; every non-latency snapshot
	// field stays exact). Ignored when the index lacks the surface or
	// when QueryWorkers > 1 (intra-query parallelism wins).
	Batch int
	// QueryWorkers is the intra-query parallelism degree: with a value
	// > 1, range queries against an index.ParallelRangeIndex are
	// answered by RangeParallelWithStats with this worker bound, and
	// KNN queries against an index exposing the sharded
	// KNNParallelWithStats surface use opportunistic cross-shard bound
	// sharing at the same bound. Range results, stats and counts stay
	// exactly those of the sequential traversal (the interface's
	// determinism contract); parallel KNN keeps the same neighbor
	// distances but its distance count varies with scheduling. Indexes
	// without the capability ignore the setting. Use it for
	// latency-bound serving (few big queries); leave it at 0/1 for
	// throughput batches, where inter-query parallelism already fills
	// the machine.
	QueryWorkers int
	// Context, when non-nil, is checked between queries: once it is
	// cancelled, workers stop picking up new queries and the run
	// returns ctx.Err() with the results slice only partially filled.
	// In-flight queries finish (traversals are not interruptible
	// mid-tree); cancellation latency is one query. With Workers > 1
	// the filled slots are generally non-contiguous (striping) —
	// consult Stats.AnsweredMask to tell real answers from never-run
	// slots.
	Context context.Context
	// Observer, when non-nil, receives one observation per query:
	// worker w records into shard w (obs.Observer.ObserveShard), so
	// recording is contention-free and the merged snapshot's totals are
	// exact for every worker count. Latency histograms reflect real
	// timings and therefore vary run to run; every other snapshot field
	// is deterministic. It must not also be attached to the index
	// itself via its obs.Hooks — that would record every query twice,
	// so the run is refused with ErrSharedObserver.
	Observer *obs.Observer
	// Search carries the approximation knobs (index.SearchOptions:
	// Epsilon, Budget, Patience) applied to every query in the batch.
	// The zero value runs the exact paths — existing behavior,
	// byte-identical results and counts. When any knob is set and the
	// index implements index.Searcher, each query routes through the
	// unified Search entry point; the per-query Budget is each query's
	// own (not a batch total). Indexes without the Searcher surface
	// ignore the knobs and answer exactly. Workers/Bound inside this
	// struct are ignored — use QueryWorkers for intra-query
	// parallelism.
	Search index.SearchOptions
}

// WorkerStats is the per-worker slice of a batch: how many queries the
// worker answered and, when the index exposes the stats query variants
// (index.StatsIndex, as every structure in this repository does), the
// sum of its queries' SearchStats.
type WorkerStats struct {
	Queries int
	Search  index.SearchStats
}

// Stats summarize one batch run.
type Stats struct {
	// Queries is the batch size, Workers the worker count actually
	// used (capped at the batch size).
	Queries int
	Workers int
	// Wall is the wall-clock time of the whole batch, measured around
	// the worker pool. Unlike Distances it depends on the worker count
	// and machine load.
	Wall time.Duration
	// Distances is the DistanceCount delta across the whole batch when
	// the index is an index.StatsIndex, 0 otherwise. The underlying
	// counter is shared and atomic, so this is exact for the batch as a
	// whole; for per-query attribution use the SearchStats aggregates.
	Distances int64
	// HasSearch reports whether the index exposed the stats query
	// variants; Search and the PerWorker Search fields are only
	// meaningful when it is true.
	HasSearch bool
	// Search is the SearchStats sum over the whole batch.
	Search index.SearchStats
	// PerWorker is indexed by worker; worker w answered queries
	// w, w+Workers, w+2·Workers, ...
	PerWorker []WorkerStats
	// Answered counts queries actually run: equal to Queries unless
	// the Context was cancelled mid-batch.
	Answered int
	// AnsweredMask[i] reports whether results[i] holds a real answer.
	// It matters after a cancelled run with Workers > 1: workers stripe
	// the batch, so the filled slots are generally NOT a contiguous
	// prefix — worker w stops at its own next pickup, leaving holes
	// wherever slower workers had not reached. A zero-value result slot
	// (nil slice) is also a legal answer for an empty result set, so
	// the mask — not a nil check — is the only way to tell "answered
	// empty" from "never run". Always len(Queries); all true when the
	// run completed.
	AnsweredMask []bool
	// ExhaustedMask[i] reports whether query i's answer was cut short
	// by its distance budget (Result.Exhausted). Non-nil only when the
	// batch ran with approximate Search options over an index
	// implementing index.Searcher; nil for exact batches.
	ExhaustedMask []bool
}

// approxOpts is the per-query option set derived from the batch
// options: the approximation knobs pass through, intra-query
// parallelism comes from QueryWorkers.
func approxOpts(opts Options) index.SearchOptions {
	return index.SearchOptions{
		Epsilon:  opts.Search.Epsilon,
		Budget:   opts.Search.Budget,
		Patience: opts.Search.Patience,
		Workers:  opts.QueryWorkers,
	}
}

// RunRange answers a range query at radius r for every query point,
// returning results[i] = idx.Range(queries[i], r) plus batch stats.
// The index is probed once through index.CapabilitiesOf; the richest
// surface matching the options answers each query.
func RunRange[T any](idx index.Index[T], queries []T, r float64, opts Options) ([][]T, Stats, error) {
	caps := index.CapabilitiesOf(idx)
	if si := caps.Stats; si != nil {
		one := func(q T) ([]T, index.SearchStats) {
			return si.RangeWithStats(q, r)
		}
		var many batchFn[T, []T]
		if sr := caps.Search; sr != nil && opts.Search.Approximate() {
			o := approxOpts(opts)
			one = func(q T) ([]T, index.SearchStats) {
				res := sr.Search(index.Query[T]{Point: q, Radius: r, Opts: o})
				return res.Items, res.Stats
			}
		} else if pi := caps.ParallelRange; pi != nil && opts.QueryWorkers > 1 {
			one = func(q T) ([]T, index.SearchStats) {
				return pi.RangeParallelWithStats(q, r, opts.QueryWorkers)
			}
		}
		if bi := caps.Batch; bi != nil && opts.Batch > 1 && opts.QueryWorkers <= 1 {
			o := approxOpts(opts)
			many = func(qs []T) ([][]T, []index.SearchStats) {
				return runBatch(bi, qs, func(q T) index.Query[T] {
					return index.Query[T]{Point: q, Radius: r, Opts: o}
				}, func(res *index.Result[T]) []T { return res.Items })
			}
		}
		return run(si, idx, queries, opts, obs.KindRange, true, one, many)
	}
	return run[T, []T](nil, idx, queries, opts, obs.KindRange, false, func(q T) ([]T, index.SearchStats) {
		return idx.Range(q, r), index.SearchStats{}
	}, nil)
}

// RunKNN answers a k-nearest-neighbor query for every query point,
// returning results[i] = idx.KNN(queries[i], k) plus batch stats.
// The index is probed once through index.CapabilitiesOf; the richest
// surface matching the options answers each query.
func RunKNN[T any](idx index.Index[T], queries []T, k int, opts Options) ([][]index.Neighbor[T], Stats, error) {
	caps := index.CapabilitiesOf(idx)
	if si := caps.Stats; si != nil {
		one := func(q T) ([]index.Neighbor[T], index.SearchStats) {
			return si.KNNWithStats(q, k)
		}
		var many batchFn[T, []index.Neighbor[T]]
		if sr := caps.Search; sr != nil && opts.Search.Approximate() {
			o := approxOpts(opts)
			one = func(q T) ([]index.Neighbor[T], index.SearchStats) {
				res := sr.Search(index.Query[T]{Point: q, K: k, Opts: o})
				return res.Neighbors, res.Stats
			}
		} else if pi := caps.ParallelKNN; pi != nil && opts.QueryWorkers > 1 {
			one = func(q T) ([]index.Neighbor[T], index.SearchStats) {
				return pi.KNNParallelWithStats(q, k, opts.QueryWorkers)
			}
		}
		if bi := caps.Batch; bi != nil && opts.Batch > 1 && opts.QueryWorkers <= 1 {
			o := approxOpts(opts)
			many = func(qs []T) ([][]index.Neighbor[T], []index.SearchStats) {
				return runBatch(bi, qs, func(q T) index.Query[T] {
					return index.Query[T]{Point: q, K: k, Opts: o}
				}, func(res *index.Result[T]) []index.Neighbor[T] { return res.Neighbors })
			}
		}
		return run(si, idx, queries, opts, obs.KindKNN, true, one, many)
	}
	return run[T, []index.Neighbor[T]](nil, idx, queries, opts, obs.KindKNN, false, func(q T) ([]index.Neighbor[T], index.SearchStats) {
		return idx.KNN(q, k), index.SearchStats{}
	}, nil)
}

// batchFn answers one contiguous query group with a shared traversal,
// returning the per-query results and SearchStats positionally.
type batchFn[T any, R any] func(qs []T) ([]R, []index.SearchStats)

// runBatch adapts one index.BatchSearcher call to the executor's
// (results, stats) shape: mk builds the request for one query point,
// extract pulls the endpoint's result kind out of the unified Result.
func runBatch[T any, R any](bi index.BatchSearcher[T], qs []T,
	mk func(q T) index.Query[T], extract func(res *index.Result[T]) R) ([]R, []index.SearchStats) {
	reqs := make([]index.Query[T], len(qs))
	for i, q := range qs {
		reqs[i] = mk(q)
	}
	res := make([]index.Result[T], len(qs))
	bi.SearchBatch(reqs, res)
	out := make([]R, len(qs))
	ss := make([]index.SearchStats, len(qs))
	for i := range res {
		out[i] = extract(&res[i])
		ss[i] = res[i].Stats
	}
	return out, ss
}

// run stripes the batch over the worker pool. one answers a single
// query; si is non-nil exactly when the index exposes index.StatsIndex,
// in which case hasStats is true and the per-query SearchStats are
// real. many, when non-nil, answers a whole group with one shared
// traversal — each worker then walks its stripe in chunks of
// opts.Batch, with identical per-query answers and attribution.
func run[T any, R any](si index.StatsIndex[T], idx index.Index[T], queries []T, opts Options,
	kind obs.Kind, hasStats bool, one func(q T) (R, index.SearchStats),
	many batchFn[T, R]) ([]R, Stats, error) {

	if opts.Observer != nil {
		// Refuse the double-counting footgun: the same Observer wired
		// both here and into the index's own query spans.
		if h, ok := idx.(interface{ Observer() *obs.Observer }); ok && h.Observer() == opts.Observer {
			return nil, Stats{}, ErrSharedObserver
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	stats := Stats{
		Queries:      len(queries),
		Workers:      workers,
		HasSearch:    hasStats,
		PerWorker:    make([]WorkerStats, workers),
		AnsweredMask: make([]bool, len(queries)),
	}
	if hasStats && opts.Search.Approximate() {
		stats.ExhaustedMask = make([]bool, len(queries))
	}
	var before int64
	if si != nil {
		before = si.DistanceCount()
	}
	observer := opts.Observer
	ctx := opts.Context
	results := make([]R, len(queries))
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &stats.PerWorker[w]
			if many != nil {
				// Chunked stripe: same query-to-worker assignment, same
				// per-query answers and stats, one shared traversal per
				// chunk. Cancellation is checked per chunk; a pending,
				// never-executed chunk stays unanswered (mask false),
				// exactly like queries the sequential loop never reached.
				chunk := make([]T, 0, opts.Batch)
				idxs := make([]int, 0, opts.Batch)
				flush := func() {
					if len(chunk) == 0 {
						return
					}
					var cStart time.Time
					if observer != nil {
						cStart = time.Now()
					}
					res, ss := many(chunk)
					if observer != nil {
						per := time.Since(cStart) / time.Duration(len(chunk))
						for _, s := range ss {
							observer.ObserveShard(w, kind, per, s)
						}
					}
					for ci, i := range idxs {
						results[i] = res[ci]
						stats.AnsweredMask[i] = true
						if stats.ExhaustedMask != nil && ss[ci].BudgetExhausted > 0 {
							stats.ExhaustedMask[i] = true
						}
						ws.Queries++
						ws.Search.Add(ss[ci])
					}
					chunk = chunk[:0]
					idxs = idxs[:0]
				}
				for i := w; i < len(queries); i += workers {
					if ctx != nil && ctx.Err() != nil {
						return
					}
					chunk = append(chunk, queries[i])
					idxs = append(idxs, i)
					if len(chunk) == opts.Batch {
						flush()
					}
				}
				if ctx == nil || ctx.Err() == nil {
					flush()
				}
				return
			}
			for i := w; i < len(queries); i += workers {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				var qStart time.Time
				if observer != nil {
					qStart = time.Now()
				}
				res, s := one(queries[i])
				if observer != nil {
					observer.ObserveShard(w, kind, time.Since(qStart), s)
				}
				results[i] = res
				stats.AnsweredMask[i] = true
				if stats.ExhaustedMask != nil && s.BudgetExhausted > 0 {
					stats.ExhaustedMask[i] = true
				}
				ws.Queries++
				if hasStats {
					ws.Search.Add(s)
				}
			}
		}(w)
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	if si != nil {
		stats.Distances = si.DistanceCount() - before
	}
	for _, ws := range stats.PerWorker {
		stats.Search.Add(ws.Search)
		stats.Answered += ws.Queries
	}
	if ctx != nil && ctx.Err() != nil && stats.Answered < stats.Queries {
		return results, stats, ctx.Err()
	}
	return results, stats, nil
}
