package qexec

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"mvptree/internal/dataset"
	"mvptree/internal/index"
	"mvptree/internal/linear"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
)

func testTree(t *testing.T) (*mvp.Tree[[]float64], *metric.Counter[[]float64], [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(33, 7))
	items := dataset.UniformVectors(rng, 2000, 8)
	queries := dataset.UniformQueries(rng, 25, 8)
	c := metric.NewCounter(metric.L2)
	tree, err := mvp.New(items, c, mvp.Options{Partitions: 3, LeafCapacity: 40, PathLength: 4, Build: mvp.Build{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	return tree, c, queries
}

// TestRunRangeDeterministicAcrossWorkers is the executor's core
// contract: results and distance counts are identical for every worker
// count — parallelism must change wall-clock time only, never the
// paper's cost metric.
func TestRunRangeDeterministicAcrossWorkers(t *testing.T) {
	tree, c, queries := testTree(t)
	const r = 0.5

	c.Reset()
	seqRes, seqStats, _ := RunRange[[]float64](tree, queries, r, Options{Workers: 1})
	if seqStats.Workers != 1 {
		t.Fatalf("Workers = %d, want 1", seqStats.Workers)
	}
	for _, workers := range []int{2, 4, 8, 100} {
		c.Reset()
		res, stats, _ := RunRange[[]float64](tree, queries, r, Options{Workers: workers})
		if stats.Distances != seqStats.Distances {
			t.Errorf("workers=%d: %d distance computations, sequential made %d", workers, stats.Distances, seqStats.Distances)
		}
		if !reflect.DeepEqual(res, seqRes) {
			t.Errorf("workers=%d: results differ from sequential run", workers)
		}
		if stats.Search != seqStats.Search {
			t.Errorf("workers=%d: aggregated SearchStats differ: %+v vs %+v", workers, stats.Search, seqStats.Search)
		}
	}
}

// TestRunRangeOrderingAndStats checks result indexing against direct
// sequential calls and reconciles the three cost views: Counter delta,
// aggregated SearchStats and the per-worker breakdown.
func TestRunRangeOrderingAndStats(t *testing.T) {
	tree, c, queries := testTree(t)
	const r = 0.4

	want := make([][][]float64, len(queries))
	for i, q := range queries {
		want[i] = tree.Range(q, r)
	}
	c.Reset()
	res, stats, _ := RunRange[[]float64](tree, queries, r, Options{Workers: 3})
	if len(res) != len(queries) {
		t.Fatalf("%d results for %d queries", len(res), len(queries))
	}
	for i := range res {
		if !reflect.DeepEqual(res[i], want[i]) {
			t.Fatalf("results[%d] does not answer queries[%d]", i, i)
		}
	}
	if !stats.HasSearch {
		t.Fatal("mvp-tree exposes RangeWithStats but HasSearch is false")
	}
	if got := int64(stats.Search.Computed + stats.Search.VantagePoints); got != stats.Distances {
		t.Fatalf("SearchStats account for %d computations, Counter delta is %d", got, stats.Distances)
	}
	var perWorker WorkerStats
	nq := 0
	for w, ws := range stats.PerWorker {
		nq += ws.Queries
		// Striping: worker w answers ceil((n-w)/W) queries.
		wantQ := (len(queries) - w + stats.Workers - 1) / stats.Workers
		if ws.Queries != wantQ {
			t.Errorf("worker %d answered %d queries, want %d", w, ws.Queries, wantQ)
		}
		perWorker.Search.Add(ws.Search)
	}
	if nq != len(queries) {
		t.Fatalf("workers answered %d queries in total, want %d", nq, len(queries))
	}
	if perWorker.Search != stats.Search {
		t.Fatalf("per-worker stats sum %+v != total %+v", perWorker.Search, stats.Search)
	}
}

// TestRunKNNMatchesSequential checks KNN batches against direct calls
// and the stats plumbing through KNNWithStats.
func TestRunKNNMatchesSequential(t *testing.T) {
	tree, c, queries := testTree(t)
	const k = 9

	want := make([][]float64, len(queries))
	for i, q := range queries {
		for _, nb := range tree.KNN(q, k) {
			want[i] = append(want[i], nb.Dist)
		}
	}
	c.Reset()
	res, stats, _ := RunKNN[[]float64](tree, queries, k, Options{Workers: 5})
	for i := range res {
		if len(res[i]) != len(want[i]) {
			t.Fatalf("results[%d] has %d neighbors, want %d", i, len(res[i]), len(want[i]))
		}
		for j, nb := range res[i] {
			if nb.Dist != want[i][j] {
				t.Fatalf("results[%d][%d].Dist = %g, want %g", i, j, nb.Dist, want[i][j])
			}
		}
	}
	if !stats.HasSearch {
		t.Fatal("mvp-tree exposes KNNWithStats but HasSearch is false")
	}
	if got := int64(stats.Search.Computed + stats.Search.VantagePoints); got != stats.Distances {
		t.Fatalf("SearchStats account for %d computations, Counter delta is %d", got, stats.Distances)
	}
}

// plainIndex hides an index's stats surface so only the bare
// index.Index methods remain visible to the executor's probe.
type plainIndex struct{ s *linear.Scan[[]float64] }

func (p plainIndex) Len() int                                 { return p.s.Len() }
func (p plainIndex) Range(q []float64, r float64) [][]float64 { return p.s.Range(q, r) }
func (p plainIndex) KNN(q []float64, k int) []index.Neighbor[[]float64] {
	return p.s.KNN(q, k)
}

// TestRunRangePlainIndex exercises the fallback path for indexes that
// implement only index.Index: results still deterministic, HasSearch
// false, Distances unmeasured (the executor reads costs through
// index.StatsIndex, which every structure in this repository — but not
// this wrapper — implements).
func TestRunRangePlainIndex(t *testing.T) {
	rng := rand.New(rand.NewPCG(34, 7))
	items := dataset.UniformVectors(rng, 500, 6)
	queries := dataset.UniformQueries(rng, 10, 6)
	scan := linear.New(items, metric.NewCounter(metric.L2))

	res, stats, _ := RunRange[[]float64](plainIndex{scan}, queries, 0.5, Options{Workers: 4})
	if stats.HasSearch {
		t.Fatal("plain index has no stats variants but HasSearch is true")
	}
	if stats.Distances != 0 {
		t.Fatalf("plain index cannot report distances, got %d", stats.Distances)
	}
	for i, q := range queries {
		if !reflect.DeepEqual(res[i], scan.Range(q, 0.5)) {
			t.Fatalf("results[%d] differs from direct call", i)
		}
	}
}

// TestRunEdgeCases: empty batches and defaulted worker counts must not
// panic or mis-size outputs.
func TestRunEdgeCases(t *testing.T) {
	tree, _, _ := testTree(t)
	res, stats, _ := RunRange[[]float64](tree, nil, 0.5, Options{})
	if len(res) != 0 || stats.Queries != 0 || stats.Workers != 1 {
		t.Fatalf("empty batch: res=%d stats=%+v", len(res), stats)
	}
	one := [][]float64{make([]float64, 8)}
	res2, stats2, _ := RunKNN[[]float64](tree, one, 3, Options{Workers: 64})
	if len(res2) != 1 || stats2.Workers != 1 {
		t.Fatalf("single query: %d results, %d workers", len(res2), stats2.Workers)
	}
}
