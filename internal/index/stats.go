package index

// SearchStats is the per-query filtering breakdown shared by every
// structure that offers stats query variants (RangeWithStats,
// KNNWithStats). It is defined once here — the index packages alias it
// — so the batch executor and the experiment harness can aggregate
// stats from any structure uniformly.
//
// Not every structure populates every field: the vp-tree stores no leaf
// distances, so FilteredByD and FilteredByPath stay zero there and
// Computed always equals Candidates; only the mvp-tree family fills the
// two Filtered counters (the paper's Observation 2 made measurable).
type SearchStats struct {
	// NodesVisited and LeavesVisited count tree nodes entered.
	NodesVisited  int
	LeavesVisited int
	// ShellsPruned counts child slots excluded by cutoff tests.
	ShellsPruned int
	// Candidates counts leaf data points considered.
	Candidates int
	// FilteredByD counts candidates excluded by stored exact distances
	// to the leaf's own vantage points (the paper's D1/D2 arrays).
	FilteredByD int
	// FilteredByPath counts candidates excluded by a retained PATH
	// distance — the filter only the mvp-tree family has.
	FilteredByPath int
	// FilteredByCascade counts candidates excluded by the cross-query
	// bound cascade (internal/cascade): the triangle-inequality lower
	// bound over vantage distances the query registered earlier in its
	// own traversal. Zero unless the structure has cascading enabled.
	FilteredByCascade int
	// Computed counts real distance computations against leaf data
	// points; VantagePoints counts those against vantage points. Their
	// sum equals the Counter delta for the query — including on
	// budget-terminated queries, whose traversals debit the budget
	// before computing and so never over- or under-count.
	Computed      int
	VantagePoints int
	// Results is the answer-set size.
	Results int
	// Approximated is 1 when the query's answer is not certified
	// exact: ε > 0 was requested, the distance budget ran out, or kNN
	// patience terminated the search early. Summing over a batch gives
	// the number of approximate answers.
	Approximated int
	// BudgetExhausted is 1 when the distance budget cut the traversal
	// short, i.e. the answer is partial.
	BudgetExhausted int
}

// Distances is the query's total distance computations — Computed plus
// VantagePoints — which equals the structure's Counter delta for the
// query.
func (s SearchStats) Distances() int64 {
	return int64(s.Computed) + int64(s.VantagePoints)
}

// Add accumulates b into s field by field, for aggregating per-query
// stats into batch or per-worker totals.
func (s *SearchStats) Add(b SearchStats) {
	s.NodesVisited += b.NodesVisited
	s.LeavesVisited += b.LeavesVisited
	s.ShellsPruned += b.ShellsPruned
	s.Candidates += b.Candidates
	s.FilteredByD += b.FilteredByD
	s.FilteredByPath += b.FilteredByPath
	s.FilteredByCascade += b.FilteredByCascade
	s.Computed += b.Computed
	s.VantagePoints += b.VantagePoints
	s.Results += b.Results
	s.Approximated += b.Approximated
	s.BudgetExhausted += b.BudgetExhausted
}
