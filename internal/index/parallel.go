package index

// This file defines the two optional capability interfaces behind the
// sharded/parallel serving layer (internal/shard, qexec): intra-query
// parallel range traversal and externally-bounded kNN. They are
// deliberately separate from StatsIndex — structures opt in per
// capability, and callers probe with a type assertion exactly as they
// do for StatsIndex.

// ParallelRangeIndex is implemented by structures whose range search
// can answer a single query with several goroutines: the traversal
// plans a frontier of independent subtrees sequentially, forks them to
// a bounded worker pool, and stitches the per-subtree outputs back in
// traversal order.
//
// The contract is strict determinism: for every workers value
// (including 1) the result slice is byte-identical to Range(q, r) —
// same items, same order — and the SearchStats (and therefore the
// distance-computation count) are identical too. Parallelism trades
// wall-clock time only, never the paper's cost metric.
type ParallelRangeIndex[T any] interface {
	StatsIndex[T]

	// RangeParallelWithStats answers one range query using up to
	// workers goroutines (values <= 1 fall back to the sequential
	// traversal).
	RangeParallelWithStats(q T, r float64, workers int) ([]T, SearchStats)
}

// KNNBound is an external pruning bound threaded through a kNN search:
// the cross-shard tau of a sharded index, or a carried bound when
// shards are searched sequentially. The searcher consults
// min(localTau, Tau()) for every pruning and early-abandonment
// decision and offers its own tightening k-th-best distance back
// through Publish, so concurrent (or subsequent) searches over sibling
// shards prune against the best bound known anywhere.
//
// Correctness requirement on implementations: Tau must never return a
// value smaller than the final k-th-best distance of the *global*
// query (across all shards). Under that invariant a searcher may
// discard any candidate certified to exceed Tau() without losing a
// global result; ties exactly at the global k-th distance may be
// dropped, which the Index.KNN contract already permits.
type KNNBound interface {
	// Tau returns the current external bound (+Inf when none is known
	// yet). It must be monotonically non-increasing over the lifetime
	// of one query.
	Tau() float64
	// Publish offers a searcher's current local k-th-best distance.
	// Implementations keep the minimum of everything published.
	Publish(tau float64)
}

// BoundedKNNIndex is implemented by structures whose kNN search accepts
// an external KNNBound. With ext == nil the search is exactly
// KNNWithStats; with a bound attached the search additionally prunes
// against ext.Tau() and publishes its own threshold, so results may
// omit items whose distance is >= the external bound (the sharded
// caller merges per-shard candidate lists, so nothing in the global
// top-k is lost).
type BoundedKNNIndex[T any] interface {
	StatsIndex[T]

	// KNNWithStatsBound is KNNWithStats with an optional external
	// pruning bound.
	KNNWithStatsBound(q T, k int, ext KNNBound) ([]Neighbor[T], SearchStats)
}
