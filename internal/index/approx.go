package index

// Approx is the per-query state an approximate/budgeted traversal
// threads through its recursion: the (1+ε) prune scale, the remaining
// distance budget, and the kNN patience counter. Structures construct
// one with StartApprox, consult Shrink/Scale for every prune decision,
// call Pay before every distance computation, poll Stop at loop heads,
// and stamp the outcome into the query's SearchStats with Finish.
//
// The discipline that keeps budget accounting exact (Distances() ==
// Counter delta even on budget-terminated queries): Pay debits the
// budget BEFORE the computation and, when it cannot, the caller must
// return without computing. A traversal therefore never overspends by
// even one computation, and every computation it did make was both
// counted in SearchStats and paid for.
type Approx struct {
	scale     float64 // 1/(1+ε); 1 when exact
	remaining int64
	limited   bool
	exhausted bool
	patience  int // configured leaf patience; 0 = disabled
	calm      int // consecutive non-improving leaves
	bored     bool
}

// StartApprox compiles SearchOptions into traversal state.
func StartApprox(o SearchOptions) Approx {
	a := Approx{scale: 1, patience: o.Patience}
	if o.Epsilon > 0 {
		a.scale = 1 / (1 + o.Epsilon)
	}
	if o.Budget > 0 {
		a.limited = true
		a.remaining = o.Budget
	}
	return a
}

// Shrink maps an exact prune radius (or kNN threshold τ) to its
// approximate counterpart r/(1+ε). Prune tests use the shrunken value;
// acceptance tests keep the full one, so reported answers are always
// true answers and anything within r/(1+ε) is never pruned.
func (a *Approx) Shrink(r float64) float64 { return r * a.scale }

// Pay debits n distance computations from the budget, reporting
// whether they fit. Once it returns false the traversal must stop
// without computing; Pay keeps returning false from then on.
func (a *Approx) Pay(n int) bool {
	if !a.limited {
		return true
	}
	if a.exhausted || a.remaining < int64(n) {
		a.exhausted = true
		return false
	}
	a.remaining -= int64(n)
	return true
}

// Stop reports whether the traversal must unwind now — the budget ran
// out or kNN patience fired. Poll it at loop and recursion heads.
func (a *Approx) Stop() bool { return a.exhausted || a.bored }

// LeafDone records one processed kNN leaf (or candidate, for
// scan-shaped structures). improved says whether the k-th-best
// threshold tightened; full says whether k candidates are held.
// Patience only counts full, non-improving leaves.
func (a *Approx) LeafDone(improved, full bool) {
	if a.patience <= 0 {
		return
	}
	if improved || !full {
		a.calm = 0
		return
	}
	if a.calm++; a.calm >= a.patience {
		a.bored = true
	}
}

// Finish stamps the query outcome into s: BudgetExhausted when the
// budget cut the traversal short, and Approximated whenever the answer
// is not certified exact (ε slack, exhausted budget, or patience).
func (a *Approx) Finish(s *SearchStats) {
	if a.exhausted {
		s.BudgetExhausted = 1
	}
	if a.scale != 1 || a.exhausted || a.bored {
		s.Approximated = 1
	}
}
