package index

// This file defines the unified query-options API: one request type
// (Query + SearchOptions) consulted by every structure's single Search
// entry point, subsuming the per-capability method variants that
// accreted over earlier revisions (Range/RangeWithStats/ParallelRange/
// KNNWithStats/KNNWithStatsBound/...). Those variants remain as thin
// wrappers; new code should construct a Query and call Search.
//
// The options cover three approximation axes on top of the exact knobs:
//
//   - Epsilon: (1+ε)-approximate search. Range queries prune subtrees
//     and filter candidates against the shrunken radius r/(1+ε) while
//     still accepting any computed item within r, so every reported
//     item is a true answer and every item within r/(1+ε) is
//     guaranteed reported. kNN queries prune against τ/(1+ε): each
//     returned neighbor is within (1+ε) of the distance of the true
//     i-th nearest neighbor.
//   - Budget: a hard cap on distance computations for the query. The
//     traversal debits the budget before every computation and stops
//     (returning the best partial answer) when it cannot pay;
//     SearchStats.BudgetExhausted records whether that happened.
//   - Patience: early-terminating kNN. Once k candidates are held,
//     stop after this many consecutive leaves (or candidates, for
//     scan-shaped structures) that fail to tighten the k-th-best
//     distance.
//
// A query with all three at their zero values is exact: it runs the
// same code path as the legacy methods and is byte-identical to them
// in results, order, and distance counts.
type SearchOptions struct {
	// Epsilon is the (1+ε) approximation slack. 0 means exact.
	// Negative values are treated as 0.
	Epsilon float64

	// Budget caps the query's distance computations. 0 (or negative)
	// means unlimited.
	Budget int64

	// Patience, for kNN queries only: stop after this many consecutive
	// non-improving leaves once k candidates are held. 0 disables.
	Patience int

	// Workers requests an intra-query parallel traversal where the
	// structure supports one (values <= 1 run sequentially). Honored
	// only on exact range queries — the parallel planner does not
	// thread approximation state.
	Workers int

	// Bound is an optional external kNN pruning bound (cross-shard τ
	// sharing). Honored by structures implementing BoundedKNNIndex on
	// exact queries; approximate traversals ignore it.
	Bound KNNBound
}

// Approximate reports whether any approximation knob is active — i.e.
// whether the query must run the approximate traversal rather than the
// exact one.
func (o SearchOptions) Approximate() bool {
	return o.Epsilon > 0 || o.Budget > 0 || o.Patience > 0
}

// Query is one search request against a structure's unified Search
// entry point: a k-nearest-neighbor query when K > 0, otherwise a
// range query with the given Radius (a radius of 0 is a valid point
// query).
type Query[T any] struct {
	// Point is the query object.
	Point T
	// Radius is the range-query radius; consulted only when K == 0.
	Radius float64
	// K requests a k-nearest-neighbor query when > 0.
	K int
	// Opts carries the exact/approximate/budget/parallel knobs.
	Opts SearchOptions
}

// RangeQuery builds an exact range request; chain option tweaks on the
// returned value's Opts field.
func RangeQuery[T any](q T, r float64) Query[T] {
	return Query[T]{Point: q, Radius: r}
}

// KNNQuery builds an exact k-nearest-neighbor request.
func KNNQuery[T any](q T, k int) Query[T] {
	return Query[T]{Point: q, K: k}
}

// Result is the answer to one Query: Items for range queries,
// Neighbors for kNN queries, and always the per-query SearchStats.
type Result[T any] struct {
	// Items holds range-query results (K == 0), in the same order the
	// structure's Range method would return them.
	Items []T
	// Neighbors holds kNN results (K > 0), ascending by distance.
	Neighbors []Neighbor[T]
	// Stats is the query's filtering breakdown; Stats.Distances()
	// equals the structure's Counter delta for the query.
	Stats SearchStats
}

// Exhausted reports whether the distance budget cut the traversal
// short, i.e. whether the result is a partial answer.
func (r Result[T]) Exhausted() bool { return r.Stats.BudgetExhausted > 0 }

// Exact reports whether the answer is certified exact — no ε slack was
// requested and neither the budget nor kNN patience terminated the
// traversal early.
func (r Result[T]) Exact() bool { return r.Stats.Approximated == 0 }

// Searcher is the unified query entry point every structure in this
// repository implements: one method consulted with the full request,
// in place of per-capability method variants.
type Searcher[T any] interface {
	StatsIndex[T]

	// Search answers req. With zero-valued SearchOptions it is
	// byte-identical — results, order, and distance counts — to
	// RangeWithStats / KNNWithStats.
	Search(req Query[T]) Result[T]
}

// BatchSearcher is implemented by structures that can answer a group of
// queries with one shared traversal: the tree is descended once per
// group, each node's vantage distances are computed for all still-active
// queries with one blocked metric call, and each leaf arena is streamed
// once for the whole group.
type BatchSearcher[T any] interface {
	Searcher[T]

	// SearchBatch answers reqs[i] into results[i]. It panics unless
	// len(results) == len(reqs). Every results[i] — items, neighbor
	// order, SearchStats, and the structure's Counter delta — is
	// byte-identical to what Search(reqs[i]) produces, at every batch
	// size; batching changes memory traffic, never answers. Queries the
	// shared traversal cannot batch (approximate modes, intra-query
	// parallel requests, external kNN bounds) are answered by per-query
	// Search calls inside the same invocation.
	SearchBatch(reqs []Query[T], results []Result[T])
}
