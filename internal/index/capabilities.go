package index

// Capabilities is the one-call capability report for an index:
// which optional query surfaces it supports, plus typed handles so a
// caller probes once instead of chaining type assertions at every
// call site (the executor and the shard fan-out both used to).
type Capabilities[T any] struct {
	// Stats is the index viewed through StatsIndex, nil when the index
	// offers no stats variants.
	Stats StatsIndex[T]
	// Search is the unified query entry point, nil when the index
	// predates it (external implementations of Index only).
	Search Searcher[T]
	// ParallelRange is non-nil when the index can answer one range
	// query with several goroutines.
	ParallelRange ParallelRangeIndex[T]
	// BoundedKNN is non-nil when the kNN search accepts an external
	// KNNBound.
	BoundedKNN BoundedKNNIndex[T]
	// ParallelKNN is non-nil when the index can answer one kNN query
	// with several goroutines.
	ParallelKNN ParallelKNNIndex[T]
	// Batch is non-nil when the index can answer a query group with one
	// shared traversal (SearchBatch).
	Batch BatchSearcher[T]
}

// ParallelKNNIndex is implemented by indexes (the sharded index) whose
// kNN search can use several goroutines for a single query. Unlike
// ParallelRangeIndex the result need not be byte-identical to the
// sequential order at ties, but the distance multiset is exact.
type ParallelKNNIndex[T any] interface {
	StatsIndex[T]

	// KNNParallelWithStats answers one kNN query using up to workers
	// goroutines (values <= 1 fall back to the sequential path).
	KNNParallelWithStats(q T, k int, workers int) ([]Neighbor[T], SearchStats)
}

// CapabilityReporter lets a wrapper index (the sharded index, the
// dynamic store) publish its own capability report instead of being
// probed by assertion — e.g. to hide a capability its inner shards
// have but the wrapper cannot honor.
type CapabilityReporter[T any] interface {
	Capabilities() Capabilities[T]
}

// CapabilitiesOf probes idx once and returns its full capability
// report. Indexes implementing CapabilityReporter answer for
// themselves; everything else is probed by type assertion here — the
// single place in the repository that does so.
func CapabilitiesOf[T any](idx Index[T]) Capabilities[T] {
	if r, ok := idx.(CapabilityReporter[T]); ok {
		return r.Capabilities()
	}
	var c Capabilities[T]
	c.Stats, _ = idx.(StatsIndex[T])
	c.Search, _ = idx.(Searcher[T])
	c.ParallelRange, _ = idx.(ParallelRangeIndex[T])
	c.BoundedKNN, _ = idx.(BoundedKNNIndex[T])
	c.ParallelKNN, _ = idx.(ParallelKNNIndex[T])
	c.Batch, _ = idx.(BatchSearcher[T])
	return c
}
