// Package index defines the interface shared by all distance-based index
// structures in this repository, together with common result types.
package index

// Neighbor is one item of a k-nearest-neighbor result with its distance
// from the query.
type Neighbor[T any] struct {
	Item T
	Dist float64
}

// Index is a similarity-search index over a fixed set of items in a
// metric space. All implementations in this repository are static: they
// are bulk-built from a slice of items and answer queries, matching the
// paper's setting (dynamic updates are listed there as an open problem).
type Index[T any] interface {
	// Range returns every indexed item within distance r of q
	// (inclusive), in unspecified order.
	Range(q T, r float64) []T

	// KNN returns the k indexed items nearest to q, ordered by
	// ascending distance. If fewer than k items are indexed it returns
	// all of them. Ties at the k-th distance are broken arbitrarily.
	KNN(q T, k int) []Neighbor[T]

	// Len reports the number of indexed items.
	Len() int
}
