// Package index defines the interface shared by all distance-based index
// structures in this repository, together with common result types.
package index

// Neighbor is one item of a k-nearest-neighbor result with its distance
// from the query.
type Neighbor[T any] struct {
	Item T
	Dist float64
}

// Index is a similarity-search index over a fixed set of items in a
// metric space. All implementations in this repository are static: they
// are bulk-built from a slice of items and answer queries, matching the
// paper's setting (dynamic updates are listed there as an open problem).
type Index[T any] interface {
	// Range returns every indexed item within distance r of q
	// (inclusive), in unspecified order.
	Range(q T, r float64) []T

	// KNN returns the k indexed items nearest to q, ordered by
	// ascending distance. If fewer than k items are indexed it returns
	// all of them. Ties at the k-th distance are broken arbitrarily.
	KNN(q T, k int) []Neighbor[T]

	// Len reports the number of indexed items.
	Len() int
}

// StatsIndex is an Index whose query paths also report per-query cost
// breakdowns. Every structure in this repository implements it (as does
// the dynamic store), and the batch executor uses it — instead of
// package-private assertions — to collect telemetry uniformly.
//
// The stats variants answer exactly the same traversal as Range/KNN:
// results (and their order within one query) are identical, and the
// returned SearchStats satisfy Computed + VantagePoints == the
// structure's distance-Counter delta for that query.
type StatsIndex[T any] interface {
	Index[T]

	// RangeWithStats is Range plus the query's filtering breakdown.
	RangeWithStats(q T, r float64) ([]T, SearchStats)

	// KNNWithStats is KNN plus the query's filtering breakdown.
	KNNWithStats(q T, k int) ([]Neighbor[T], SearchStats)

	// DistanceCount reports the cumulative number of distance
	// computations the structure has performed (build + queries), the
	// paper's cost metric. It is the structure's atomic Counter value,
	// read without a type-parameterized Counter handle so wrappers over
	// a different item type (the dynamic store) can satisfy it too.
	DistanceCount() int64
}
