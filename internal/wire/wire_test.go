package wire

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(0)
	w.Uvarint(1<<63 + 12345)
	w.Int(42)
	w.Float(3.25)
	w.Float(math.Inf(1))
	w.Floats([]float64{1, 2, 3})
	w.Floats(nil)
	w.Bytes([]byte("hello"))
	w.Bytes(nil)
	w.Bool(true)
	w.Bool(false)
	w.Byte(0xAB)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<63+12345 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Float(); got != 3.25 {
		t.Errorf("Float = %g", got)
	}
	if got := r.Float(); !math.IsInf(got, 1) {
		t.Errorf("Float = %g", got)
	}
	fs := r.Floats()
	if len(fs) != 3 || fs[2] != 3 {
		t.Errorf("Floats = %v", fs)
	}
	if got := r.Floats(); got != nil {
		t.Errorf("empty Floats = %v", got)
	}
	if got := r.Bytes(); string(got) != "hello" {
		t.Errorf("Bytes = %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes = %q", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.Byte(); got != 0xAB {
		t.Errorf("Byte = %#x", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderStickyErrors(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint on empty = %d", got)
	}
	if r.Err() == nil {
		t.Fatal("no error after reading from empty stream")
	}
	first := r.Err()
	r.Float()
	r.Bytes()
	if !errors.Is(r.Err(), first) && r.Err() != first {
		t.Error("error not sticky")
	}
}

func TestWriterNegativeInt(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int(-1)
	if w.Err() == nil {
		t.Fatal("negative Int accepted")
	}
}

func TestReaderLengthLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(MaxBytes + 1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	r.Int()
	if r.Err() == nil {
		t.Fatal("oversized length accepted")
	}
}

func TestBytesTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int(100) // claims 100 bytes follow
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	r.Bytes()
	if r.Err() == nil {
		t.Fatal("truncated Bytes accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, fl float64, b []byte, ok bool) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Uvarint(u)
		w.Float(fl)
		w.Bytes(b)
		w.Bool(ok)
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		gu := r.Uvarint()
		gf := r.Float()
		gb := r.Bytes()
		gok := r.Bool()
		if r.Err() != nil {
			return false
		}
		floatSame := gf == fl || (math.IsNaN(gf) && math.IsNaN(fl))
		return gu == u && floatSame && bytes.Equal(gb, b) && gok == ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
