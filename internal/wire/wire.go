// Package wire provides the minimal binary encoding used to persist
// index structures: unsigned varints, IEEE-754 floats, length-prefixed
// byte strings and booleans, with sticky error handling so encoders and
// decoders read as straight-line code.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MaxBytes bounds a single length-prefixed byte string; longer lengths
// in the input indicate corruption.
const MaxBytes = 1 << 28

// Writer serializes values with sticky errors.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err reports the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush flushes buffered output and returns the first error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(u uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], u)
	_, w.err = w.w.Write(buf[:n])
}

// Int writes a non-negative int as a varint; negative values are an
// encoding bug and set the error.
func (w *Writer) Int(n int) {
	if n < 0 {
		if w.err == nil {
			w.err = fmt.Errorf("wire: negative length %d", n)
		}
		return
	}
	w.Uvarint(uint64(n))
}

// Float writes a float64 as its IEEE-754 bits, little endian.
func (w *Writer) Float(f float64) {
	if w.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	_, w.err = w.w.Write(buf[:])
}

// Floats writes a length-prefixed float64 slice.
func (w *Writer) Floats(fs []float64) {
	w.Int(len(fs))
	for _, f := range fs {
		w.Float(f)
	}
}

// Bytes writes a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.Int(len(b))
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// Bool writes a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if w.err != nil {
		return
	}
	v := byte(0)
	if b {
		v = 1
	}
	w.err = w.w.WriteByte(v)
}

// Byte writes one raw byte.
func (w *Writer) Byte(b byte) {
	if w.err != nil {
		return
	}
	w.err = w.w.WriteByte(b)
}

// Reader deserializes values with sticky errors.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Err reports the first error encountered.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("wire: reading varint: %w", err))
		return 0
	}
	return u
}

// Int reads a varint-encoded non-negative int bounded by MaxBytes.
func (r *Reader) Int() int {
	u := r.Uvarint()
	if u > MaxBytes {
		r.fail(fmt.Errorf("wire: length %d exceeds limit", u))
		return 0
	}
	return int(u)
}

// Float reads a float64.
func (r *Reader) Float() float64 {
	if r.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		r.fail(fmt.Errorf("wire: reading float: %w", err))
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

// Floats reads a length-prefixed float64 slice; nil for length zero.
func (r *Reader) Floats() []float64 {
	n := r.Int()
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Bytes reads a length-prefixed byte string.
func (r *Reader) Bytes() []byte {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r.r, out); err != nil {
		r.fail(fmt.Errorf("wire: reading bytes: %w", err))
		return nil
	}
	return out
}

// Bool reads a boolean.
func (r *Reader) Bool() bool {
	return r.Byte() != 0
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	if err != nil {
		r.fail(fmt.Errorf("wire: reading byte: %w", err))
		return 0
	}
	return b
}
