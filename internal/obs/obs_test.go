package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"

	"mvptree/internal/index"
)

func TestObserverTotals(t *testing.T) {
	o := NewObserver(4)
	if o.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", o.Shards())
	}
	for i := 0; i < 10; i++ {
		o.Observe(KindRange, time.Duration(100+i), index.SearchStats{Computed: 5, VantagePoints: 2, Results: 1})
	}
	for i := 0; i < 7; i++ {
		o.Observe(KindKNN, time.Duration(200+i), index.SearchStats{Computed: 3, VantagePoints: 1})
	}
	s := o.Snapshot()
	if s.Queries != 17 || s.Range.Queries != 10 || s.KNN.Queries != 7 {
		t.Fatalf("queries = %d/%d/%d, want 17/10/7", s.Queries, s.Range.Queries, s.KNN.Queries)
	}
	if want := int64(10*7 + 7*4); s.Distances != want {
		t.Fatalf("Distances = %d, want %d", s.Distances, want)
	}
	if s.Search.Results != 10 {
		t.Fatalf("Search.Results = %d, want 10", s.Search.Results)
	}
	if s.DistanceHist.Total() != 17 {
		t.Fatalf("DistanceHist.Total = %d, want 17", s.DistanceHist.Total())
	}
	if s.Range.LatencyTotal == 0 || s.Range.P50 == 0 {
		t.Fatalf("range latency not recorded: %+v", s.Range)
	}
}

// TestObserverShardingInvariance: totals must not depend on how queries
// land on shards — round-robin, pinned, or concurrent.
func TestObserverShardingInvariance(t *testing.T) {
	const queries = 1000
	stats := index.SearchStats{Computed: 11, VantagePoints: 3, Candidates: 20}

	build := func(record func(o *Observer, i int)) Snapshot {
		o := NewObserver(8)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < queries; i += 4 {
					record(o, i)
				}
			}(w)
		}
		wg.Wait()
		return o.Snapshot()
	}

	roundRobin := build(func(o *Observer, i int) { o.Observe(KindRange, time.Microsecond, stats) })
	pinned := build(func(o *Observer, i int) { o.ObserveShard(i%4, KindRange, time.Microsecond, stats) })

	for _, s := range []Snapshot{roundRobin, pinned} {
		if s.Queries != queries {
			t.Fatalf("Queries = %d, want %d", s.Queries, queries)
		}
		if want := int64(queries * 14); s.Distances != want {
			t.Fatalf("Distances = %d, want %d", s.Distances, want)
		}
		if s.Search.Candidates != queries*20 {
			t.Fatalf("Candidates = %d, want %d", s.Search.Candidates, queries*20)
		}
	}
	if roundRobin.DistanceHist != pinned.DistanceHist {
		t.Fatal("distance histograms differ between sharding strategies")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewObserver(1)
	b := NewObserver(2)
	all := NewObserver(4)
	for i := 0; i < 5; i++ {
		s := index.SearchStats{Computed: i, Results: 1}
		a.Observe(KindRange, time.Duration(i+1)*time.Microsecond, s)
		all.Observe(KindRange, time.Duration(i+1)*time.Microsecond, s)
	}
	for i := 0; i < 3; i++ {
		s := index.SearchStats{VantagePoints: i}
		b.Observe(KindKNN, time.Duration(i+1)*time.Millisecond, s)
		all.Observe(KindKNN, time.Duration(i+1)*time.Millisecond, s)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	if want := all.Snapshot(); merged != want {
		t.Fatalf("merge mismatch\ngot  %+v\nwant %+v", merged, want)
	}
}

func TestHooksNilFastPath(t *testing.T) {
	var h Hooks
	allocs := testing.AllocsPerRun(100, func() {
		span := h.StartQuery(KindRange)
		h.TraceNode(true)
		h.TracePrune(FilterD, 3)
		h.TraceDistance(1)
		var s index.SearchStats
		span.Done(&s)
	})
	if allocs != 0 {
		t.Fatalf("disarmed hooks allocated %v times per run, want 0", allocs)
	}
}

// countingTracer records event counts; safe for single-goroutine use.
type countingTracer struct {
	starts, nodes, prunes, distances, dones int
	pruned                                  map[Filter]int
	lastStats                               index.SearchStats
}

func (c *countingTracer) OnQueryStart(Kind)     { c.starts++ }
func (c *countingTracer) OnNodeVisit(leaf bool) { c.nodes++ }
func (c *countingTracer) OnFilterPrune(f Filter, n int) {
	c.prunes++
	if c.pruned == nil {
		c.pruned = make(map[Filter]int)
	}
	c.pruned[f] += n
}
func (c *countingTracer) OnDistance(n int) { c.distances += n }
func (c *countingTracer) OnQueryDone(k Kind, d time.Duration, s index.SearchStats) {
	c.dones++
	c.lastStats = s
}

func TestHooksTracerEvents(t *testing.T) {
	var h Hooks
	tr := &countingTracer{}
	h.SetTracer(tr)
	span := h.StartQuery(KindKNN)
	h.TraceNode(false)
	h.TraceNode(true)
	h.TracePrune(FilterShell, 2)
	h.TracePrune(FilterPath, 5)
	h.TraceDistance(4)
	stats := index.SearchStats{Computed: 4, Results: 2}
	span.Done(&stats)

	if tr.starts != 1 || tr.dones != 1 {
		t.Fatalf("starts/dones = %d/%d, want 1/1", tr.starts, tr.dones)
	}
	if tr.nodes != 2 || tr.distances != 4 {
		t.Fatalf("nodes/distances = %d/%d, want 2/4", tr.nodes, tr.distances)
	}
	if tr.pruned[FilterShell] != 2 || tr.pruned[FilterPath] != 5 {
		t.Fatalf("pruned = %v", tr.pruned)
	}
	if tr.lastStats != stats {
		t.Fatalf("OnQueryDone stats = %+v, want %+v", tr.lastStats, stats)
	}
}

func TestMultiTracer(t *testing.T) {
	a, b := &countingTracer{}, &countingTracer{}
	m := MultiTracer{a, b}
	m.OnQueryStart(KindRange)
	m.OnNodeVisit(true)
	m.OnFilterPrune(FilterD, 1)
	m.OnDistance(2)
	m.OnQueryDone(KindRange, time.Second, index.SearchStats{})
	for _, tr := range []*countingTracer{a, b} {
		if tr.starts != 1 || tr.nodes != 1 || tr.prunes != 1 || tr.distances != 2 || tr.dones != 1 {
			t.Fatalf("tracer missed events: %+v", tr)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	o := NewObserver(2)
	o.Observe(KindRange, time.Millisecond, index.SearchStats{Computed: 9, VantagePoints: 1, Results: 3})
	var buf strings.Builder
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if back.Distances != 10 || back.Queries != 1 {
		t.Fatalf("decoded snapshot %+v", back)
	}
}

func TestPublishExpvar(t *testing.T) {
	o := NewObserver(1)
	o.Observe(KindKNN, time.Millisecond, index.SearchStats{Computed: 2})
	PublishExpvar("mvptree_obs_test", o)
	// Publishing again (same or different observer) must not panic and
	// must rebind to the latest observer.
	o2 := NewObserver(1)
	o2.Observe(KindRange, time.Millisecond, index.SearchStats{Computed: 7})
	PublishExpvar("mvptree_obs_test", o2)
	v := expvar.Get("mvptree_obs_test")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value not JSON: %v", err)
	}
	if snap.Distances != 7 {
		t.Fatalf("expvar snapshot = %+v, want rebound observer with 7 distances", snap)
	}
}

func TestKindFilterStrings(t *testing.T) {
	if KindRange.String() != "range" || KindKNN.String() != "knn" {
		t.Fatal("Kind strings")
	}
	if FilterShell.String() != "shell" || FilterD.String() != "d_bound" || FilterPath.String() != "path" {
		t.Fatal("Filter strings")
	}
}
