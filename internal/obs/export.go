package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"sync"
)

// WriteJSON writes an indented JSON rendering of the observer's current
// Snapshot.
func (o *Observer) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(o.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

var publishMu sync.Mutex

// PublishExpvar exposes the observer's live Snapshot under the given
// expvar name (served on /debug/vars by net/http's default mux). The
// snapshot is recomputed on every read. Publishing a name twice rebinds
// it to the new observer instead of panicking the way expvar.Publish
// does, so tests and re-initialised services are safe.
func PublishExpvar(name string, o *Observer) {
	publishMu.Lock()
	defer publishMu.Unlock()
	f := expvar.Func(func() any { return o.Snapshot() })
	if v := expvar.Get(name); v != nil {
		// Already bound: rebind when the existing variable is one of
		// ours (a *rebindable), otherwise leave the foreign variable
		// alone rather than panic.
		if r, ok := v.(*rebindable); ok {
			r.mu.Lock()
			r.f = f
			r.mu.Unlock()
		}
		return
	}
	expvar.Publish(name, &rebindable{f: f})
}

// rebindable is an expvar.Var whose underlying Func can be swapped, so
// PublishExpvar is idempotent per name.
type rebindable struct {
	mu sync.Mutex
	f  expvar.Func
}

func (r *rebindable) String() string {
	r.mu.Lock()
	f := r.f
	r.mu.Unlock()
	return f.String()
}
