package obs

import (
	"time"

	"mvptree/internal/index"
)

// Hooks is the embeddable observability attachment point shared by
// every index structure. The zero value is disarmed: every Trace*
// method reduces to a nil check and StartQuery returns a Span whose
// Done is a no-op, so un-instrumented queries pay no allocation and no
// time.Now call.
//
// SetObserver / SetTracer are not synchronized with running queries;
// attach instruments before serving concurrent traffic (the facade
// applies them at construction time).
type Hooks struct {
	observer *Observer
	tracer   Tracer
}

// SetObserver attaches (or with nil, detaches) an aggregating Observer.
func (h *Hooks) SetObserver(o *Observer) { h.observer = o }

// SetTracer attaches (or with nil, detaches) a per-event Tracer.
func (h *Hooks) SetTracer(t Tracer) { h.tracer = t }

// Observer returns the attached Observer, nil when disarmed.
func (h *Hooks) Observer() *Observer { return h.observer }

// Tracer returns the attached Tracer, nil when disarmed.
func (h *Hooks) Tracer() Tracer { return h.tracer }

// StartQuery opens a Span for one query. When neither instrument is
// attached the returned Span is inert and its Done a no-op; otherwise
// the span stamps a start time and fires OnQueryStart.
func (h *Hooks) StartQuery(kind Kind) Span {
	if h.observer == nil && h.tracer == nil {
		return Span{}
	}
	if h.tracer != nil {
		h.tracer.OnQueryStart(kind)
	}
	return Span{observer: h.observer, tracer: h.tracer, kind: kind, start: time.Now()}
}

// TraceNode forwards a node visit to the tracer, if any.
func (h *Hooks) TraceNode(leaf bool) {
	if h.tracer != nil {
		h.tracer.OnNodeVisit(leaf)
	}
}

// TracePrune forwards a pruning decision to the tracer, if any.
func (h *Hooks) TracePrune(f Filter, n int) {
	if h.tracer != nil {
		h.tracer.OnFilterPrune(f, n)
	}
}

// TraceDistance forwards n distance evaluations to the tracer, if any.
func (h *Hooks) TraceDistance(n int) {
	if h.tracer != nil {
		h.tracer.OnDistance(n)
	}
}

// Span is the per-query handle returned by StartQuery. It is a plain
// value (no allocation); the zero Span is inert.
type Span struct {
	observer *Observer
	tracer   Tracer
	kind     Kind
	start    time.Time
}

// Done closes the span: it records the query into the Observer and
// fires OnQueryDone on the Tracer. A zero Span returns immediately.
func (s Span) Done(stats *index.SearchStats) {
	if s.observer == nil && s.tracer == nil {
		return
	}
	elapsed := time.Since(s.start)
	if s.observer != nil {
		s.observer.Observe(s.kind, elapsed, *stats)
	}
	if s.tracer != nil {
		s.tracer.OnQueryDone(s.kind, elapsed, *stats)
	}
}
