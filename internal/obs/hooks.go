package obs

import (
	"time"

	"mvptree/internal/index"
)

// Hooks is the embeddable observability attachment point shared by
// every index structure. The zero value is disarmed: every Trace*
// method reduces to a nil check and StartQuery returns a Span whose
// Done is a no-op, so un-instrumented queries pay no allocation and no
// time.Now call.
//
// SetObserver / SetTracer are not synchronized with running queries;
// attach instruments before serving concurrent traffic (the facade
// applies them at construction time).
type Hooks struct {
	observer *Observer
	tracer   Tracer
	// quantRelay receives quantize-prune tallies in addition to the
	// structure's own observer. Composite indexes (shard.Index) set it
	// on their backends so per-backend prunes — which bypass
	// index.SearchStats by design — still reach the composite's
	// Observer and surface in production /stats.
	quantRelay *Observer
}

// SetObserver attaches (or with nil, detaches) an aggregating Observer.
func (h *Hooks) SetObserver(o *Observer) { h.observer = o }

// SetTracer attaches (or with nil, detaches) a per-event Tracer.
func (h *Hooks) SetTracer(t Tracer) { h.tracer = t }

// SetQuantObserver attaches (or with nil, detaches) a relay Observer
// that receives quantize-prune tallies alongside the structure's own
// observer. Same synchronization caveat as SetObserver.
func (h *Hooks) SetQuantObserver(o *Observer) { h.quantRelay = o }

// Observer returns the attached Observer, nil when disarmed.
func (h *Hooks) Observer() *Observer { return h.observer }

// Tracer returns the attached Tracer, nil when disarmed.
func (h *Hooks) Tracer() Tracer { return h.tracer }

// StartQuery opens a Span for one query. When neither instrument is
// attached the returned Span is inert and its Done a no-op; otherwise
// the span stamps a start time and fires OnQueryStart.
func (h *Hooks) StartQuery(kind Kind) Span {
	if h.observer == nil && h.tracer == nil {
		return Span{}
	}
	if h.tracer != nil {
		h.tracer.OnQueryStart(kind)
	}
	return Span{observer: h.observer, tracer: h.tracer, kind: kind, start: time.Now()}
}

// TraceNode forwards a node visit to the tracer, if any.
func (h *Hooks) TraceNode(leaf bool) {
	if h.tracer != nil {
		h.tracer.OnNodeVisit(leaf)
	}
}

// TracePrune forwards a pruning decision to the tracer, if any.
func (h *Hooks) TracePrune(f Filter, n int) {
	if h.tracer != nil {
		h.tracer.OnFilterPrune(f, n)
	}
}

// TraceDistance forwards n distance evaluations to the tracer, if any.
func (h *Hooks) TraceDistance(n int) {
	if h.tracer != nil {
		h.tracer.OnDistance(n)
	}
}

// ObserveQuantPruned records n quantize-pruned candidates (exact
// evaluations skipped on a lower-bound certificate) into the Observer,
// if any. Search paths call it once per query with the query's total.
// The count deliberately bypasses index.SearchStats — the quantized
// pre-filter leaves every per-query stat byte-identical — so it flows
// through this dedicated channel into SearchTotals.FilteredByQuantized.
func (h *Hooks) ObserveQuantPruned(n int) {
	if n <= 0 {
		return
	}
	if h.observer != nil {
		h.observer.ObserveQuantPruned(n)
	}
	if h.quantRelay != nil && h.quantRelay != h.observer {
		h.quantRelay.ObserveQuantPruned(n)
	}
}

// Span is the per-query handle returned by StartQuery. It is a plain
// value (no allocation); the zero Span is inert.
type Span struct {
	observer *Observer
	tracer   Tracer
	kind     Kind
	start    time.Time
}

// Done closes the span: it records the query into the Observer and
// fires OnQueryDone on the Tracer. A zero Span returns immediately.
func (s Span) Done(stats *index.SearchStats) {
	if s.observer == nil && s.tracer == nil {
		return
	}
	elapsed := time.Since(s.start)
	if s.observer != nil {
		s.observer.Observe(s.kind, elapsed, *stats)
	}
	if s.tracer != nil {
		s.tracer.OnQueryDone(s.kind, elapsed, *stats)
	}
}
