// Package obs is the query-side observability layer: per-query latency
// and distance-count telemetry plus pluggable trace hooks, threaded
// through every index's search path behind a nil-check fast path that
// costs nothing when disabled.
//
// The paper evaluates indexes by one number — distance computations per
// query — but a serving system needs to see where those computations go
// while queries run: how latency distributes, how often the D-bound and
// PATH filters fire, how many shells each traversal prunes. obs
// provides two complementary instruments:
//
//   - Observer: a lock-free sharded aggregator. Each query contributes
//     one latency sample, one distance-count sample, and its
//     index.SearchStats breakdown to a shard chosen round-robin (or
//     pinned per worker by the batch executor, which makes per-shard
//     attribution deterministic). Snapshots merge shards into plain
//     mergeable values whose totals are exact — with an Observer
//     attached, the snapshot's distance total equals the atomic
//     metric.Counter delta for the same queries.
//
//   - Tracer: a per-event hook interface (query start/end, node visits,
//     filter prunes, distance computations) for debugging and ad-hoc
//     analysis. Tracers see events inline on the query path and are
//     expected to be cheap; unlike the Observer they are invoked
//     synchronously and un-sharded, so a Tracer used from concurrent
//     queries must be safe for concurrent use.
//
// Both are optional and independent: a nil Observer and nil Tracer (the
// default) leave the search paths on a branch-predictable nil-check
// with zero allocations.
package obs

import (
	"time"

	"mvptree/internal/index"
)

// Kind distinguishes the two query shapes the layer meters.
type Kind uint8

const (
	KindRange Kind = iota
	KindKNN

	numKinds = 2
)

// String returns the snake-case name used in JSON and expvar exports.
func (k Kind) String() string {
	switch k {
	case KindRange:
		return "range"
	case KindKNN:
		return "knn"
	}
	return "unknown"
}

// Filter identifies which pruning rule rejected candidates, mirroring
// the attribution fields of index.SearchStats.
type Filter uint8

const (
	// FilterShell: a subtree (vp-tree shell, mvp-tree region, GNAT
	// range, hyperplane side, ball) was skipped wholesale.
	FilterShell Filter = iota
	// FilterD: a leaf candidate was rejected by a stored
	// vantage-point distance (the paper's Observation 1 D-bound).
	FilterD
	// FilterPath: a leaf candidate was rejected by its PATH of
	// ancestor vantage-point distances (Observation 2).
	FilterPath
	// FilterCascade: a leaf candidate was rejected by the cross-query
	// bound cascade — the triangle-inequality lower bound over vantage
	// distances registered earlier in the same traversal
	// (internal/cascade).
	FilterCascade
	// FilterQuantized: a leaf candidate's exact float64 evaluation was
	// skipped because the quantized companion representation's lower
	// bound certified the distance exceeds the threshold
	// (internal/quant). Unlike the other filters this does not change
	// any count in index.SearchStats — a quantize-pruned candidate is
	// still charged as one computed distance, exactly as an abandoned
	// DistanceUpTo call would be — so it is surfaced only here and in
	// SearchTotals.FilteredByQuantized.
	FilterQuantized
)

// String returns the snake-case name used in trace output.
func (f Filter) String() string {
	switch f {
	case FilterShell:
		return "shell"
	case FilterD:
		return "d_bound"
	case FilterPath:
		return "path"
	case FilterCascade:
		return "cascade"
	case FilterQuantized:
		return "quantized"
	}
	return "unknown"
}

// Tracer receives per-event callbacks from a search path. All methods
// are called synchronously on the query's goroutine; implementations
// used under concurrent queries must be safe for concurrent use.
//
// Event granularity varies by structure: every structure emits
// OnQueryStart and OnQueryDone; tree structures additionally emit
// OnNodeVisit per internal node or leaf, OnFilterPrune per pruning
// decision, and OnDistance per query-to-object distance evaluation
// (vantage points and leaf candidates alike).
type Tracer interface {
	// OnQueryStart fires before the traversal begins.
	OnQueryStart(kind Kind)
	// OnNodeVisit fires when the traversal enters a node; leaf
	// reports whether it is a leaf.
	OnNodeVisit(leaf bool)
	// OnFilterPrune fires when filter f rejects n candidates (for
	// FilterShell, n is the number of subtrees or regions skipped by
	// one decision; for FilterD/FilterPath it is the number of leaf
	// candidates eliminated).
	OnFilterPrune(f Filter, n int)
	// OnDistance fires when the traversal evaluates n distances
	// between the query and stored objects.
	OnDistance(n int)
	// OnQueryDone fires after the traversal with the query's wall
	// time and its full SearchStats breakdown.
	OnQueryDone(kind Kind, elapsed time.Duration, stats index.SearchStats)
}

// MultiTracer fans every event out to each member in order.
type MultiTracer []Tracer

func (m MultiTracer) OnQueryStart(kind Kind) {
	for _, t := range m {
		t.OnQueryStart(kind)
	}
}

func (m MultiTracer) OnNodeVisit(leaf bool) {
	for _, t := range m {
		t.OnNodeVisit(leaf)
	}
}

func (m MultiTracer) OnFilterPrune(f Filter, n int) {
	for _, t := range m {
		t.OnFilterPrune(f, n)
	}
}

func (m MultiTracer) OnDistance(n int) {
	for _, t := range m {
		t.OnDistance(n)
	}
}

func (m MultiTracer) OnQueryDone(kind Kind, elapsed time.Duration, stats index.SearchStats) {
	for _, t := range m {
		t.OnQueryDone(kind, elapsed, stats)
	}
}
