package obs

import (
	"runtime"
	"sync/atomic"
	"time"

	"mvptree/internal/histogram"
	"mvptree/internal/index"
)

// Observer aggregates per-query telemetry — latency and distance-count
// histograms plus the summed index.SearchStats breakdown — across
// concurrent queries without locks. Recording is sharded: each query
// lands on one shard (round-robin by default, or pinned by the caller
// via ObserveShard, which the batch executor uses to make per-worker
// attribution deterministic) and every shard field is a plain atomic
// add, so recorders never contend on a mutex and scale with cores.
//
// Snapshot merges the shards into one plain value. Totals are exact
// regardless of sharding: because histogram merging is associative and
// every field is a sum (or max), the snapshot's distance total equals
// the atomic metric.Counter delta for the same set of queries, for any
// shard or worker count.
type Observer struct {
	shards []shard
	mask   uint64
	cursor atomic.Uint64
}

// shard is one lock-free slice of the aggregate. All fields are atomic
// adds except the maxima, which use a CAS loop.
type shard struct {
	queries [numKinds]atomic.Int64
	latency [numKinds]atomicLog2
	dist    atomicLog2
	search  atomicSearchStats
	// quantPruned lives beside — not inside — the SearchStats mirror:
	// the quantized pre-filter changes no per-query stat, so its count
	// arrives through ObserveQuantPruned rather than Observe.
	quantPruned atomic.Int64
	// pad spaces shards a cache line apart so adjacent shards' hot
	// counters do not false-share.
	_ [64]byte
}

// atomicLog2 is the recorder form of histogram.Log2.
type atomicLog2 struct {
	counts [histogram.Log2Buckets]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

func (h *atomicLog2) add(v int64) {
	h.counts[histogram.Log2Bucket(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (h *atomicLog2) snapshot() histogram.Log2 {
	var out histogram.Log2
	for b := range h.counts {
		out.Counts[b] = h.counts[b].Load()
	}
	out.N = h.n.Load()
	out.Sum = h.sum.Load()
	out.Max = h.max.Load()
	return out
}

// atomicSearchStats mirrors index.SearchStats field for field.
type atomicSearchStats struct {
	nodesVisited      atomic.Int64
	leavesVisited     atomic.Int64
	shellsPruned      atomic.Int64
	candidates        atomic.Int64
	filteredByD       atomic.Int64
	filteredByPath    atomic.Int64
	filteredByCascade atomic.Int64
	computed          atomic.Int64
	vantagePoints     atomic.Int64
	results           atomic.Int64
	approximated      atomic.Int64
	budgetExhausted   atomic.Int64
}

func (s *atomicSearchStats) add(b index.SearchStats) {
	s.nodesVisited.Add(int64(b.NodesVisited))
	s.leavesVisited.Add(int64(b.LeavesVisited))
	s.shellsPruned.Add(int64(b.ShellsPruned))
	s.candidates.Add(int64(b.Candidates))
	s.filteredByD.Add(int64(b.FilteredByD))
	s.filteredByPath.Add(int64(b.FilteredByPath))
	s.filteredByCascade.Add(int64(b.FilteredByCascade))
	s.computed.Add(int64(b.Computed))
	s.vantagePoints.Add(int64(b.VantagePoints))
	s.results.Add(int64(b.Results))
	s.approximated.Add(int64(b.Approximated))
	s.budgetExhausted.Add(int64(b.BudgetExhausted))
}

func (s *atomicSearchStats) snapshot() SearchTotals {
	return SearchTotals{
		NodesVisited:      s.nodesVisited.Load(),
		LeavesVisited:     s.leavesVisited.Load(),
		ShellsPruned:      s.shellsPruned.Load(),
		Candidates:        s.candidates.Load(),
		FilteredByD:       s.filteredByD.Load(),
		FilteredByPath:    s.filteredByPath.Load(),
		FilteredByCascade: s.filteredByCascade.Load(),
		Computed:          s.computed.Load(),
		VantagePoints:     s.vantagePoints.Load(),
		Results:           s.results.Load(),
		Approximated:      s.approximated.Load(),
		BudgetExhausted:   s.budgetExhausted.Load(),
	}
}

// NewObserver returns an Observer with at least the requested shard
// count (rounded up to a power of two so shard selection is a mask).
// shards <= 0 selects a default sized to GOMAXPROCS.
func NewObserver(shards int) *Observer {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Observer{shards: make([]shard, n), mask: uint64(n - 1)}
}

// Shards reports the shard count actually allocated.
func (o *Observer) Shards() int { return len(o.shards) }

// Observe records one completed query on a round-robin shard. Safe for
// concurrent use.
func (o *Observer) Observe(kind Kind, elapsed time.Duration, stats index.SearchStats) {
	o.record(&o.shards[o.cursor.Add(1)&o.mask], kind, elapsed, stats)
}

// ObserveShard records one completed query on shard i (mod the shard
// count). Pinning queries to shards — as the batch executor does with
// its worker index — keeps per-shard content deterministic across runs.
// Safe for concurrent use as long as distinct goroutines use distinct
// shards or accept interleaved counts (totals are exact either way).
func (o *Observer) ObserveShard(i int, kind Kind, elapsed time.Duration, stats index.SearchStats) {
	o.record(&o.shards[uint64(i)&o.mask], kind, elapsed, stats)
}

// ObserveQuantPruned records n exact evaluations skipped by the
// quantized pre-filter. Safe for concurrent use; the count surfaces as
// Snapshot.Search.FilteredByQuantized.
func (o *Observer) ObserveQuantPruned(n int) {
	o.shards[o.cursor.Load()&o.mask].quantPruned.Add(int64(n))
}

func (o *Observer) record(s *shard, kind Kind, elapsed time.Duration, stats index.SearchStats) {
	s.queries[kind].Add(1)
	s.latency[kind].add(int64(elapsed))
	s.dist.add(int64(stats.Computed + stats.VantagePoints))
	s.search.add(stats)
}

// Snapshot merges every shard into one plain value. It is safe to call
// while queries record; the result is a consistent-enough view in the
// sense that every completed query is fully counted and totals are
// exact once recording quiesces.
func (o *Observer) Snapshot() Snapshot {
	var snap Snapshot
	for i := range o.shards {
		s := &o.shards[i]
		snap.Range.Queries += s.queries[KindRange].Load()
		snap.KNN.Queries += s.queries[KindKNN].Load()
		snap.Range.Latency.Merge(s.latency[KindRange].snapshot())
		snap.KNN.Latency.Merge(s.latency[KindKNN].snapshot())
		snap.DistanceHist.Merge(s.dist.snapshot())
		st := s.search.snapshot()
		st.FilteredByQuantized = s.quantPruned.Load()
		snap.Search.Add(st)
	}
	snap.finalize()
	return snap
}

// SearchTotals is the batch-level sum of index.SearchStats, widened to
// int64 so long-running services cannot overflow the per-query int
// fields.
type SearchTotals struct {
	NodesVisited      int64 `json:"nodes_visited"`
	LeavesVisited     int64 `json:"leaves_visited"`
	ShellsPruned      int64 `json:"shells_pruned"`
	Candidates        int64 `json:"candidates"`
	FilteredByD       int64 `json:"filtered_by_d"`
	FilteredByPath    int64 `json:"filtered_by_path"`
	FilteredByCascade int64 `json:"filtered_by_cascade"`
	// FilteredByQuantized counts exact evaluations skipped by the
	// quantized pre-filter (internal/quant). It has no SearchStats
	// counterpart — pruned candidates are still charged to Computed so
	// every other number is byte-identical with the filter on or off —
	// and is fed through Observer.ObserveQuantPruned instead of Observe.
	FilteredByQuantized int64 `json:"filtered_by_quantized"`
	Computed            int64 `json:"computed"`
	VantagePoints     int64 `json:"vantage_points"`
	Results           int64 `json:"results"`
	// Approximated counts queries whose answer was not certified
	// exact; BudgetExhausted counts queries the distance budget cut
	// short. Both sum per-query 0/1 flags.
	Approximated    int64 `json:"approximated"`
	BudgetExhausted int64 `json:"budget_exhausted"`
}

// Add accumulates b into s.
func (s *SearchTotals) Add(b SearchTotals) {
	s.NodesVisited += b.NodesVisited
	s.LeavesVisited += b.LeavesVisited
	s.ShellsPruned += b.ShellsPruned
	s.Candidates += b.Candidates
	s.FilteredByD += b.FilteredByD
	s.FilteredByPath += b.FilteredByPath
	s.FilteredByCascade += b.FilteredByCascade
	s.FilteredByQuantized += b.FilteredByQuantized
	s.Computed += b.Computed
	s.VantagePoints += b.VantagePoints
	s.Results += b.Results
	s.Approximated += b.Approximated
	s.BudgetExhausted += b.BudgetExhausted
}

// AddStats accumulates a per-query index.SearchStats into s.
// SearchStats has no quantized-prune field (see FilteredByQuantized),
// so that total is untouched.
func (s *SearchTotals) AddStats(b index.SearchStats) {
	s.NodesVisited += int64(b.NodesVisited)
	s.LeavesVisited += int64(b.LeavesVisited)
	s.ShellsPruned += int64(b.ShellsPruned)
	s.Candidates += int64(b.Candidates)
	s.FilteredByD += int64(b.FilteredByD)
	s.FilteredByPath += int64(b.FilteredByPath)
	s.FilteredByCascade += int64(b.FilteredByCascade)
	s.Computed += int64(b.Computed)
	s.VantagePoints += int64(b.VantagePoints)
	s.Results += int64(b.Results)
	s.Approximated += int64(b.Approximated)
	s.BudgetExhausted += int64(b.BudgetExhausted)
}

// KindSnapshot is the per-query-kind slice of a Snapshot.
type KindSnapshot struct {
	Queries int64          `json:"queries"`
	Latency histogram.Log2 `json:"latency_ns"`
	// LatencyTotal is the summed wall time; P50/P90/P99 are log₂-bucket
	// upper bounds of the latency quantiles.
	LatencyTotal time.Duration `json:"latency_total_ns"`
	P50          time.Duration `json:"latency_p50_ns"`
	P90          time.Duration `json:"latency_p90_ns"`
	P99          time.Duration `json:"latency_p99_ns"`
}

func (k *KindSnapshot) finalize() {
	k.LatencyTotal = time.Duration(k.Latency.Sum)
	k.P50 = time.Duration(k.Latency.Quantile(0.50))
	k.P90 = time.Duration(k.Latency.Quantile(0.90))
	k.P99 = time.Duration(k.Latency.Quantile(0.99))
}

// Snapshot is a merged, plain-value view of an Observer. Snapshots from
// different observers (or batches) combine with Merge.
type Snapshot struct {
	// Queries is the total query count; Distances the total distance
	// computations (Search.Computed + Search.VantagePoints), which
	// matches the atomic Counter delta for the same queries.
	Queries   int64 `json:"queries"`
	Distances int64 `json:"distances"`
	// Search sums every query's filtering breakdown.
	Search SearchTotals `json:"search"`
	// DistanceHist is the distribution of per-query distance counts.
	DistanceHist histogram.Log2 `json:"distance_hist"`
	Range        KindSnapshot   `json:"range"`
	KNN          KindSnapshot   `json:"knn"`
}

func (s *Snapshot) finalize() {
	s.Queries = s.Range.Queries + s.KNN.Queries
	s.Distances = s.Search.Computed + s.Search.VantagePoints
	s.Range.finalize()
	s.KNN.finalize()
}

// Merge accumulates o into s, recomputing the derived totals and
// quantiles. Merge is associative and commutative.
func (s *Snapshot) Merge(o Snapshot) {
	s.Search.Add(o.Search)
	s.DistanceHist.Merge(o.DistanceHist)
	s.Range.Queries += o.Range.Queries
	s.KNN.Queries += o.KNN.Queries
	s.Range.Latency.Merge(o.Range.Latency)
	s.KNN.Latency.Merge(o.KNN.Latency)
	s.finalize()
}
