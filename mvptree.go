package mvptree

import (
	"mvptree/internal/balltree"
	"mvptree/internal/bktree"
	"mvptree/internal/build"
	"mvptree/internal/ghtree"
	"mvptree/internal/gnat"
	"mvptree/internal/index"
	"mvptree/internal/laesa"
	"mvptree/internal/linear"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/vptree"
)

// DistanceFunc computes the distance between two items; it must satisfy
// the metric axioms (symmetry, identity, positivity, triangle
// inequality) for correct query results.
type DistanceFunc[T any] = metric.DistanceFunc[T]

// Counter wraps a DistanceFunc and counts invocations — the paper's cost
// measure. Every index owns one; read it via the index's Counter method.
type Counter[T any] = metric.Counter[T]

// NewCounter returns a Counter wrapping fn.
func NewCounter[T any](fn DistanceFunc[T]) *Counter[T] { return metric.NewCounter(fn) }

// Neighbor is one k-nearest-neighbor result.
type Neighbor[T any] = index.Neighbor[T]

// BuildOptions are the construction knobs shared by every structure in
// this library, embedded (as the field Build) in each structure's
// Options: Workers spreads construction's distance computations and
// subtree builds over a bounded goroutine pool — the index built is
// identical for every worker count — and Seed makes random choices
// (vantage points, pivots, split points) deterministic.
type BuildOptions = build.Options

// BuildStats is the uniform construction report returned by every
// structure's New*WithStats constructor: distance computations (the
// paper's build-cost measure, identical for every worker count), wall
// time, node count, maximum depth and the worker count used.
type BuildStats = build.Stats

// Index is the query interface shared by every structure in this
// library.
type Index[T any] = index.Index[T]

// CheckAxioms verifies the metric axioms of fn over a sample, with
// tolerance eps on the triangle inequality. It is O(n³) in the sample
// size; run it on a small sample before trusting a hand-written metric.
func CheckAxioms[T any](fn DistanceFunc[T], sample []T, eps float64) error {
	return metric.CheckAxioms(fn, sample, eps)
}

// Tree is a multi-vantage-point tree, the primary index of this library.
type Tree[T any] = mvp.Tree[T]

// Options configure mvp-tree construction: Partitions (m), LeafCapacity
// (k), PathLength (p) and the vantage-point selection switches.
type Options = mvp.Options

// TreeStats describes the shape of a built mvp-tree.
type TreeStats = mvp.Stats

// New builds an mvp-tree over items with a fresh internal Counter.
func New[T any](items []T, dist DistanceFunc[T], opts Options) (*Tree[T], error) {
	return mvp.New(items, metric.NewCounter(dist), opts)
}

// NewWithStats is New plus the construction report.
func NewWithStats[T any](items []T, dist DistanceFunc[T], opts Options) (*Tree[T], BuildStats, error) {
	return mvp.NewWithStats(items, metric.NewCounter(dist), opts)
}

// NewWithCounter builds an mvp-tree measuring distances through an
// existing Counter, so construction and query costs accumulate where the
// caller wants them.
func NewWithCounter[T any](items []T, dist *Counter[T], opts Options) (*Tree[T], error) {
	return mvp.New(items, dist, opts)
}

// VPTree is a vantage-point tree [Uhl91, Yia93], the paper's baseline.
type VPTree[T any] = vptree.Tree[T]

// VPOptions configure vp-tree construction: Order (m), LeafCapacity and
// the vantage-point selection strategy.
type VPOptions = vptree.Options

// Vantage-point selection strategies for VPOptions.Selection.
const (
	SelectRandom     = vptree.SelectRandom
	SelectBestSpread = vptree.SelectBestSpread
)

// NewVP builds a vp-tree over items with a fresh internal Counter.
func NewVP[T any](items []T, dist DistanceFunc[T], opts VPOptions) (*VPTree[T], error) {
	return vptree.New(items, metric.NewCounter(dist), opts)
}

// NewVPWithCounter builds a vp-tree through an existing Counter.
func NewVPWithCounter[T any](items []T, dist *Counter[T], opts VPOptions) (*VPTree[T], error) {
	return vptree.New(items, dist, opts)
}

// NewVPWithStats is NewVP plus the construction report.
func NewVPWithStats[T any](items []T, dist DistanceFunc[T], opts VPOptions) (*VPTree[T], BuildStats, error) {
	return vptree.NewWithStats(items, metric.NewCounter(dist), opts)
}

// GHTree is a generalized hyperplane tree [Uhl91].
type GHTree[T any] = ghtree.Tree[T]

// GHOptions configure gh-tree construction.
type GHOptions = ghtree.Options

// NewGH builds a gh-tree over items with a fresh internal Counter.
func NewGH[T any](items []T, dist DistanceFunc[T], opts GHOptions) (*GHTree[T], error) {
	return ghtree.New(items, metric.NewCounter(dist), opts)
}

// NewGHWithStats is NewGH plus the construction report.
func NewGHWithStats[T any](items []T, dist DistanceFunc[T], opts GHOptions) (*GHTree[T], BuildStats, error) {
	return ghtree.NewWithStats(items, metric.NewCounter(dist), opts)
}

// GNATree is a Geometric Near-neighbor Access Tree [Bri95].
type GNATree[T any] = gnat.Tree[T]

// GNATOptions configure GNAT construction.
type GNATOptions = gnat.Options

// NewGNAT builds a GNAT over items with a fresh internal Counter.
func NewGNAT[T any](items []T, dist DistanceFunc[T], opts GNATOptions) (*GNATree[T], error) {
	return gnat.New(items, metric.NewCounter(dist), opts)
}

// NewGNATWithStats is NewGNAT plus the construction report.
func NewGNATWithStats[T any](items []T, dist DistanceFunc[T], opts GNATOptions) (*GNATree[T], BuildStats, error) {
	return gnat.NewWithStats(items, metric.NewCounter(dist), opts)
}

// BKTree is a Burkhard–Keller tree [BK73] for integer-valued metrics
// such as edit or Hamming distance. Unlike the other structures it
// supports incremental Insert.
type BKTree[T any] = bktree.Tree[T]

// BKOptions configure BK-tree bulk construction (only the shared
// BuildOptions apply; the tree's shape has no tunable parameters).
type BKOptions = bktree.Options

// NewBK builds a BK-tree over items with a fresh internal Counter. The
// metric must return non-negative integers.
func NewBK[T any](items []T, dist DistanceFunc[T]) (*BKTree[T], error) {
	return bktree.New(items, metric.NewCounter(dist), BKOptions{})
}

// NewBKWithStats is NewBK with explicit options plus the construction
// report.
func NewBKWithStats[T any](items []T, dist DistanceFunc[T], opts BKOptions) (*BKTree[T], BuildStats, error) {
	return bktree.NewWithStats(items, metric.NewCounter(dist), opts)
}

// PivotTable is a pre-computed pivot-distance index in the spirit of
// [SW90]/LAESA.
type PivotTable[T any] = laesa.Table[T]

// PivotOptions configure pivot-table construction.
type PivotOptions = laesa.Options

// NewPivotTable builds a pivot table over items with a fresh internal
// Counter.
func NewPivotTable[T any](items []T, dist DistanceFunc[T], opts PivotOptions) (*PivotTable[T], error) {
	return laesa.New(items, metric.NewCounter(dist), opts)
}

// NewPivotTableWithStats is NewPivotTable plus the construction report.
func NewPivotTableWithStats[T any](items []T, dist DistanceFunc[T], opts PivotOptions) (*PivotTable[T], BuildStats, error) {
	return laesa.NewWithStats(items, metric.NewCounter(dist), opts)
}

// LinearScan is the brute-force baseline: every query costs exactly
// Len() distance computations.
type LinearScan[T any] = linear.Scan[T]

// NewLinear builds a linear scan over items with a fresh internal
// Counter.
func NewLinear[T any](items []T, dist DistanceFunc[T]) *LinearScan[T] {
	return linear.New(items, metric.NewCounter(dist))
}

// BallTree is the center/radius multi-way tree of [BK73]'s second
// method — the ancestor of ball trees and M-trees, reviewed by the
// paper in §3.2.
type BallTree[T any] = balltree.Tree[T]

// BallOptions configure ball-tree construction.
type BallOptions = balltree.Options

// NewBall builds a ball tree over items with a fresh internal Counter.
func NewBall[T any](items []T, dist DistanceFunc[T], opts BallOptions) (*BallTree[T], error) {
	return balltree.New(items, metric.NewCounter(dist), opts)
}

// NewBallWithStats is NewBall plus the construction report.
func NewBallWithStats[T any](items []T, dist DistanceFunc[T], opts BallOptions) (*BallTree[T], BuildStats, error) {
	return balltree.NewWithStats(items, metric.NewCounter(dist), opts)
}
