package mvptree

import (
	"mvptree/internal/balltree"
	"mvptree/internal/bktree"
	"mvptree/internal/build"
	"mvptree/internal/ghtree"
	"mvptree/internal/gnat"
	"mvptree/internal/index"
	"mvptree/internal/laesa"
	"mvptree/internal/linear"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/vptree"
)

// DistanceFunc computes the distance between two items; it must satisfy
// the metric axioms (symmetry, identity, positivity, triangle
// inequality) for correct query results.
type DistanceFunc[T any] = metric.DistanceFunc[T]

// Counter wraps a DistanceFunc and counts invocations — the paper's cost
// measure. Every index owns one; read it via the index's Counter method.
type Counter[T any] = metric.Counter[T]

// NewCounter returns a Counter wrapping fn.
func NewCounter[T any](fn DistanceFunc[T]) *Counter[T] { return metric.NewCounter(fn) }

// Neighbor is one k-nearest-neighbor result.
type Neighbor[T any] = index.Neighbor[T]

// SearchOptions are the per-query knobs of the unified Search entry
// point every structure implements: Epsilon ((1+ε)-approximation),
// Budget (distance-computation cap), Patience (early kNN
// termination), Workers (intra-query parallelism on capable indexes)
// and Bound (an external kNN pruning bound). The zero value asks for
// the exact answer.
type SearchOptions = index.SearchOptions

// Query is one unified search request: a range query when Radius is
// set and K == 0, a kNN query when K > 0.
type Query[T any] = index.Query[T]

// Result is a unified search answer: Items for range queries,
// Neighbors for kNN, plus the query's SearchStats. Exact() reports
// whether the answer is certified exact; Exhausted() whether the
// distance budget cut it short.
type Result[T any] = index.Result[T]

// Searcher is implemented by every structure in this library: the
// stats surface plus the unified Search entry point.
type Searcher[T any] = index.Searcher[T]

// BatchSearcher is the shared-traversal batch surface: SearchBatch
// answers a group of queries with one descent per structure, results,
// stats and distance counts byte-identical to per-query Search calls.
// The mvp-tree, the vp-tree and the sharded index implement it; probe
// with CapabilitiesOf (the Batch field) rather than type-asserting.
type BatchSearcher[T any] = index.BatchSearcher[T]

// Capabilities is the one-call capability report of an index; obtain
// one with CapabilitiesOf instead of chaining type assertions.
type Capabilities[T any] = index.Capabilities[T]

// CapabilitiesOf probes idx once for every optional query surface.
func CapabilitiesOf[T any](idx Index[T]) Capabilities[T] {
	return index.CapabilitiesOf(idx)
}

// NewRangeQuery and NewKNNQuery build the common request shapes.
func NewRangeQuery[T any](q T, r float64) Query[T] { return index.RangeQuery(q, r) }
func NewKNNQuery[T any](q T, k int) Query[T]       { return index.KNNQuery(q, k) }

// BuildOptions are the construction knobs shared by every structure in
// this library, embedded (as the field Build) in each structure's
// Options: Workers spreads construction's distance computations and
// subtree builds over a bounded goroutine pool — the index built is
// identical for every worker count — and Seed makes random choices
// (vantage points, pivots, split points) deterministic.
type BuildOptions = build.Options

// BuildStats is the uniform construction report returned by every
// structure's New*WithStats constructor: distance computations (the
// paper's build-cost measure, identical for every worker count), wall
// time, node count, maximum depth and the worker count used.
type BuildStats = build.Stats

// Index is the query interface shared by every structure in this
// library.
type Index[T any] = index.Index[T]

// CheckAxioms verifies the metric axioms of fn over a sample, with
// tolerance eps on the triangle inequality. It is O(n³) in the sample
// size; run it on a small sample before trusting a hand-written metric.
func CheckAxioms[T any](fn DistanceFunc[T], sample []T, eps float64) error {
	return metric.CheckAxioms(fn, sample, eps)
}

// Tree is a multi-vantage-point tree, the primary index of this library.
type Tree[T any] = mvp.Tree[T]

// Options configure mvp-tree construction: Partitions (m), LeafCapacity
// (k), PathLength (p) and the vantage-point selection switches.
type Options = mvp.Options

// TreeStats describes the shape of a built mvp-tree.
type TreeStats = mvp.Stats

// New builds an mvp-tree over items. By default it measures distances
// through a fresh internal Counter; pass WithCounter, WithObserver or
// WithTracer to share a counter or attach telemetry.
func New[T any](items []T, dist DistanceFunc[T], opts Options, ixOpts ...IndexOption[T]) (*Tree[T], error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, err := mvp.New(items, cfg.counter, opts)
	if err != nil {
		return nil, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, err
	}
	if err := cfg.enableQuantize(t); err != nil {
		return nil, err
	}
	return t, nil
}

// NewWithStats is New plus the construction report.
func NewWithStats[T any](items []T, dist DistanceFunc[T], opts Options, ixOpts ...IndexOption[T]) (*Tree[T], BuildStats, error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, bs, err := mvp.NewWithStats(items, cfg.counter, opts)
	if err != nil {
		return nil, bs, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, bs, err
	}
	if err := cfg.enableQuantize(t); err != nil {
		return nil, bs, err
	}
	return t, bs, nil
}

// VPTree is a vantage-point tree [Uhl91, Yia93], the paper's baseline.
type VPTree[T any] = vptree.Tree[T]

// VPOptions configure vp-tree construction: Order (m), LeafCapacity and
// the vantage-point selection strategy.
type VPOptions = vptree.Options

// Vantage-point selection strategies for VPOptions.Selection.
const (
	SelectRandom     = vptree.SelectRandom
	SelectBestSpread = vptree.SelectBestSpread
)

// NewVP builds a vp-tree over items with a fresh internal Counter
// unless WithCounter overrides it.
func NewVP[T any](items []T, dist DistanceFunc[T], opts VPOptions, ixOpts ...IndexOption[T]) (*VPTree[T], error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, err := vptree.New(items, cfg.counter, opts)
	if err != nil {
		return nil, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, err
	}
	if err := cfg.enableQuantize(t); err != nil {
		return nil, err
	}
	return t, nil
}

// NewVPWithStats is NewVP plus the construction report.
func NewVPWithStats[T any](items []T, dist DistanceFunc[T], opts VPOptions, ixOpts ...IndexOption[T]) (*VPTree[T], BuildStats, error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, bs, err := vptree.NewWithStats(items, cfg.counter, opts)
	if err != nil {
		return nil, bs, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, bs, err
	}
	if err := cfg.enableQuantize(t); err != nil {
		return nil, bs, err
	}
	return t, bs, nil
}

// GHTree is a generalized hyperplane tree [Uhl91].
type GHTree[T any] = ghtree.Tree[T]

// GHOptions configure gh-tree construction.
type GHOptions = ghtree.Options

// NewGH builds a gh-tree over items with a fresh internal Counter
// unless WithCounter overrides it.
func NewGH[T any](items []T, dist DistanceFunc[T], opts GHOptions, ixOpts ...IndexOption[T]) (*GHTree[T], error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, err := ghtree.New(items, cfg.counter, opts)
	if err != nil {
		return nil, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, err
	}
	return t, nil
}

// NewGHWithStats is NewGH plus the construction report.
func NewGHWithStats[T any](items []T, dist DistanceFunc[T], opts GHOptions, ixOpts ...IndexOption[T]) (*GHTree[T], BuildStats, error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, bs, err := ghtree.NewWithStats(items, cfg.counter, opts)
	if err != nil {
		return nil, bs, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, bs, err
	}
	return t, bs, nil
}

// GNATree is a Geometric Near-neighbor Access Tree [Bri95].
type GNATree[T any] = gnat.Tree[T]

// GNATOptions configure GNAT construction.
type GNATOptions = gnat.Options

// NewGNAT builds a GNAT over items with a fresh internal Counter
// unless WithCounter overrides it.
func NewGNAT[T any](items []T, dist DistanceFunc[T], opts GNATOptions, ixOpts ...IndexOption[T]) (*GNATree[T], error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, err := gnat.New(items, cfg.counter, opts)
	if err != nil {
		return nil, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, err
	}
	return t, nil
}

// NewGNATWithStats is NewGNAT plus the construction report.
func NewGNATWithStats[T any](items []T, dist DistanceFunc[T], opts GNATOptions, ixOpts ...IndexOption[T]) (*GNATree[T], BuildStats, error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, bs, err := gnat.NewWithStats(items, cfg.counter, opts)
	if err != nil {
		return nil, bs, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, bs, err
	}
	return t, bs, nil
}

// BKTree is a Burkhard–Keller tree [BK73] for integer-valued metrics
// such as edit or Hamming distance. Unlike the other structures it
// supports incremental Insert.
type BKTree[T any] = bktree.Tree[T]

// BKOptions configure BK-tree bulk construction (only the shared
// BuildOptions apply; the tree's shape has no tunable parameters).
type BKOptions = bktree.Options

// NewBK builds a BK-tree over items with a fresh internal Counter
// unless WithCounter overrides it. The metric must return non-negative
// integers.
func NewBK[T any](items []T, dist DistanceFunc[T], ixOpts ...IndexOption[T]) (*BKTree[T], error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, err := bktree.New(items, cfg.counter, BKOptions{})
	if err != nil {
		return nil, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, err
	}
	return t, nil
}

// NewBKWithStats is NewBK with explicit options plus the construction
// report.
func NewBKWithStats[T any](items []T, dist DistanceFunc[T], opts BKOptions, ixOpts ...IndexOption[T]) (*BKTree[T], BuildStats, error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, bs, err := bktree.NewWithStats(items, cfg.counter, opts)
	if err != nil {
		return nil, bs, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, bs, err
	}
	return t, bs, nil
}

// PivotTable is a pre-computed pivot-distance index in the spirit of
// [SW90]/LAESA.
type PivotTable[T any] = laesa.Table[T]

// PivotOptions configure pivot-table construction.
type PivotOptions = laesa.Options

// NewPivotTable builds a pivot table over items with a fresh internal
// Counter unless WithCounter overrides it.
func NewPivotTable[T any](items []T, dist DistanceFunc[T], opts PivotOptions, ixOpts ...IndexOption[T]) (*PivotTable[T], error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, err := laesa.New(items, cfg.counter, opts)
	if err != nil {
		return nil, err
	}
	cfg.install(t)
	return t, nil
}

// NewPivotTableWithStats is NewPivotTable plus the construction report.
func NewPivotTableWithStats[T any](items []T, dist DistanceFunc[T], opts PivotOptions, ixOpts ...IndexOption[T]) (*PivotTable[T], BuildStats, error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, bs, err := laesa.NewWithStats(items, cfg.counter, opts)
	if err != nil {
		return nil, bs, err
	}
	cfg.install(t)
	return t, bs, nil
}

// LinearScan is the brute-force baseline: every query costs exactly
// Len() distance computations.
type LinearScan[T any] = linear.Scan[T]

// NewLinear builds a linear scan over items with a fresh internal
// Counter unless WithCounter overrides it. WithQuantized is honored
// (a quantizable dataset never errors here, so the error is dropped);
// WithCascade is ignored — a scan has no vantage distances to reuse.
func NewLinear[T any](items []T, dist DistanceFunc[T], ixOpts ...IndexOption[T]) *LinearScan[T] {
	cfg := resolveIndexConfig(dist, ixOpts)
	s := linear.New(items, cfg.counter)
	cfg.install(s)
	_ = cfg.enableQuantize(s)
	return s
}

// BallTree is the center/radius multi-way tree of [BK73]'s second
// method — the ancestor of ball trees and M-trees, reviewed by the
// paper in §3.2.
type BallTree[T any] = balltree.Tree[T]

// BallOptions configure ball-tree construction.
type BallOptions = balltree.Options

// NewBall builds a ball tree over items with a fresh internal Counter
// unless WithCounter overrides it.
func NewBall[T any](items []T, dist DistanceFunc[T], opts BallOptions, ixOpts ...IndexOption[T]) (*BallTree[T], error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, err := balltree.New(items, cfg.counter, opts)
	if err != nil {
		return nil, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, err
	}
	return t, nil
}

// NewBallWithStats is NewBall plus the construction report.
func NewBallWithStats[T any](items []T, dist DistanceFunc[T], opts BallOptions, ixOpts ...IndexOption[T]) (*BallTree[T], BuildStats, error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, bs, err := balltree.NewWithStats(items, cfg.counter, opts)
	if err != nil {
		return nil, bs, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, bs, err
	}
	return t, bs, nil
}
