package mvptree

import (
	"errors"
	"io"

	"mvptree/internal/cascade"
	"mvptree/internal/histogram"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/quant"
)

// StatsIndex is the instrumented query interface implemented by every
// structure in this library (and by DynamicStore): the plain Index
// methods plus the WithStats query variants and the cumulative
// DistanceCount of the paper's cost metric.
type StatsIndex[T any] = index.StatsIndex[T]

// Observer aggregates per-query telemetry — latency and distance-count
// histograms plus SearchStats totals — across concurrent queries
// without locks: recordings land in sharded atomics and Snapshot merges
// the shards. Attach one to any index with the WithObserver construction
// option (or SetObserver on a built index), or hand one to the batch
// executor via BatchOptions.Observer.
type Observer = obs.Observer

// NewObserver returns an Observer with the given shard count (values
// <= 0 mean GOMAXPROCS; the count is rounded up to a power of two).
// Totals are exact for any shard count; sharding only spreads write
// contention.
func NewObserver(shards int) *Observer { return obs.NewObserver(shards) }

// Snapshot is a point-in-time merge of an Observer's shards: query
// counts, distance totals, SearchStats sums, and log-scaled latency and
// distance-count histograms with per-kind quantiles. Snapshots merge
// associatively (Snapshot.Merge), so per-worker or per-structure
// snapshots can be combined exactly.
type Snapshot = obs.Snapshot

// KindSnapshot is the per-query-kind (range / knn) slice of a Snapshot.
type KindSnapshot = obs.KindSnapshot

// SearchTotals is the int64-widened sum of per-query SearchStats inside
// a Snapshot.
type SearchTotals = obs.SearchTotals

// LogHistogram is the log₂-bucketed histogram used for latencies and
// distance counts in snapshots; it merges exactly and marshals to a
// sparse JSON form.
type LogHistogram = histogram.Log2

// Tracer receives fine-grained per-query events (query start/done, node
// visits, filter prunes, distance computations) from any index it is
// attached to via the WithTracer construction option or SetTracer.
// Implementations must be safe for concurrent use if the index serves
// concurrent queries. A nil Tracer (the default) costs only a nil check
// per event site.
type Tracer = obs.Tracer

// MultiTracer fans events out to several Tracers in order.
type MultiTracer = obs.MultiTracer

// QueryKind distinguishes range from k-nearest-neighbor queries in
// Tracer events and Observer snapshots.
type QueryKind = obs.Kind

// PruneFilter identifies which filtering mechanism rejected candidates
// in a Tracer OnFilterPrune event: the shell bounds of an internal
// node, the vantage-point distance bound (the paper's Lemma 1), the
// leaf PATH bound (Lemma 2), the cross-query bound cascade
// (WithCascade), or the quantized lower-bound pre-filter
// (WithQuantized).
type PruneFilter = obs.Filter

// Query kinds and prune filters.
const (
	KindRange = obs.KindRange
	KindKNN   = obs.KindKNN

	FilterShell     = obs.FilterShell
	FilterD         = obs.FilterD
	FilterPath      = obs.FilterPath
	FilterCascade   = obs.FilterCascade
	FilterQuantized = obs.FilterQuantized
)

// PublishExpvar publishes the observer's Snapshot under name in the
// process-wide expvar registry (served on /debug/vars by the default
// HTTP mux). Publishing a second observer under the same name rebinds
// the variable instead of panicking.
func PublishExpvar(name string, o *Observer) { obs.PublishExpvar(name, o) }

// WriteSnapshotJSON writes the observer's current Snapshot to w as
// indented JSON.
func WriteSnapshotJSON(w io.Writer, o *Observer) error { return o.WriteJSON(w) }

// IndexOption customizes the construction aspects that are generic in
// the item type and therefore cannot live in the per-structure Options
// structs: the distance Counter the index measures through, and the
// observability hooks (Observer, Tracer) its query paths report to.
type IndexOption[T any] func(*indexConfig[T])

type indexConfig[T any] struct {
	counter  *metric.Counter[T]
	observer *obs.Observer
	tracer   obs.Tracer
	cascade  *cascade.Options
	quantize quant.Mode
}

// CascadeOptions tune the cross-query bound cascade enabled with
// WithCascade (or a structure's EnableCascade method): Pivots caps how
// many vantage/split/center points get precomputed distance rows,
// MaxPerQuery caps how many pivot distances one query registers
// (DefaultMaxPerQuery = 8 — beyond that the per-candidate max-loop
// costs more than the extra bound tightness buys), and Workers
// parallelizes the one-time precomputation. The zero value uses the
// defaults.
type CascadeOptions = cascade.Options

// WithCounter makes the index measure distances through an existing
// Counter instead of a fresh internal one, so construction and query
// costs accumulate where the caller wants them. DynamicStore ignores
// this option: it owns an internal counter over its ID space.
func WithCounter[T any](c *Counter[T]) IndexOption[T] {
	return func(cfg *indexConfig[T]) { cfg.counter = c }
}

// WithObserver attaches an Observer to the index at construction; every
// query the index serves is recorded into it.
func WithObserver[T any](o *Observer) IndexOption[T] {
	return func(cfg *indexConfig[T]) { cfg.observer = o }
}

// WithTracer attaches a Tracer to the index at construction; every
// query the index serves streams events to it.
func WithTracer[T any](tr Tracer) IndexOption[T] {
	return func(cfg *indexConfig[T]) { cfg.tracer = tr }
}

// WithCascade enables the cross-query bound cascade on the built index:
// stored pivot–item distances are precomputed once (costing Pivots ×
// LeafItems distance computations, on top of construction) and every
// query thereafter reuses the vantage distances it computes anyway to
// skip leaf candidates by the triangle inequality, before paying an
// exact distance. Results are byte-identical with and without the
// cascade; per-query distance counts can only decrease. Supported by
// every tree structure (New, NewVP, NewGeneral, NewGNAT, NewGH,
// NewBall, NewBK); NewPivotTable and NewLinear ignore it — the pivot
// table is this mechanism in standalone form, and a linear scan has no
// vantage distances to reuse.
func WithCascade[T any](opts CascadeOptions) IndexOption[T] {
	return func(cfg *indexConfig[T]) { cfg.cascade = &opts }
}

// QuantizeMode selects the companion representation of the quantized
// lower-bound pre-filter: QuantizeOff, QuantizeSQ8 (one byte per
// coordinate) or QuantizeF32 (one float32 per coordinate).
type QuantizeMode = quant.Mode

// Quantize modes for WithQuantized.
const (
	QuantizeOff = quant.Off
	QuantizeSQ8 = quant.SQ8
	QuantizeF32 = quant.F32
)

// ParseQuantizeMode maps "off", "sq8" or "f32" to the QuantizeMode.
func ParseQuantizeMode(s string) (QuantizeMode, error) { return quant.ParseMode(s) }

// WithQuantized arms the quantized lower-bound pre-filter on the built
// index: item vectors are encoded once into a small companion arena
// (SQ8 byte codes or float32 copies) that leaf scans consult before
// the exact float64 kernel, skipping candidates whose quantized lower
// bound certifies rejection. Results, order, SearchStats and distance
// counts are byte-identical with the filter on or off — the win is
// memory bandwidth, which dominates high-dimensional scans. Supported
// by New, NewVP and NewLinear; the filter arms only for []float64
// items under a metric with a registered quantized shape
// (RegisterQuantized) and silently stays off otherwise. Skipped
// evaluations surface as FilterQuantized trace events and in Snapshot
// search totals as filtered_by_quantized.
func WithQuantized[T any](mode QuantizeMode) IndexOption[T] {
	return func(cfg *indexConfig[T]) { cfg.quantize = mode }
}

// resolveIndexConfig applies the options, defaulting the counter to a
// fresh one over dist.
func resolveIndexConfig[T any](dist DistanceFunc[T], ixOpts []IndexOption[T]) indexConfig[T] {
	var cfg indexConfig[T]
	for _, o := range ixOpts {
		o(&cfg)
	}
	if cfg.counter == nil {
		cfg.counter = metric.NewCounter(dist)
	}
	return cfg
}

// hooked is the attachment surface every structure gains from its
// embedded obs.Hooks.
type hooked interface {
	SetObserver(*obs.Observer)
	SetTracer(obs.Tracer)
}

// install attaches the configured observer and tracer, if any.
func (cfg indexConfig[T]) install(h hooked) {
	if cfg.observer != nil {
		h.SetObserver(cfg.observer)
	}
	if cfg.tracer != nil {
		h.SetTracer(cfg.tracer)
	}
}

// cascadable is implemented by every structure supporting the
// cross-query bound cascade.
type cascadable interface {
	EnableCascade(cascade.Options) error
}

// errInternalNotCascadable guards against a constructor wiring
// enableCascade to a structure that lacks EnableCascade; it indicates a
// bug in this package, not caller error.
var errInternalNotCascadable = errors.New("mvptree: internal error: structure does not support WithCascade")

// enableCascade builds the cascade when WithCascade was given. Called
// by the constructors of cascade-capable structures only; NewPivotTable
// and NewLinear skip it (see WithCascade).
func (cfg indexConfig[T]) enableCascade(h any) error {
	if cfg.cascade == nil {
		return nil
	}
	c, ok := h.(cascadable)
	if !ok {
		return errInternalNotCascadable
	}
	return c.EnableCascade(*cfg.cascade)
}

// quantizable is implemented by every structure supporting the
// quantized pre-filter.
type quantizable interface {
	EnableQuantize(quant.Mode) error
}

// errInternalNotQuantizable guards against a constructor wiring
// enableQuantize to a structure that lacks EnableQuantize; it
// indicates a bug in this package, not caller error.
var errInternalNotQuantizable = errors.New("mvptree: internal error: structure does not support WithQuantized")

// enableQuantize arms the pre-filter when WithQuantized was given.
// Called by the constructors of quantize-capable structures only.
func (cfg indexConfig[T]) enableQuantize(h any) error {
	if cfg.quantize == quant.Off {
		return nil
	}
	q, ok := h.(quantizable)
	if !ok {
		return errInternalNotQuantizable
	}
	return q.EnableQuantize(cfg.quantize)
}
