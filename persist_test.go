package mvptree_test

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"mvptree"
)

func TestSaveLoadTreePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 1))
	vectors := mvptree.UniformVectors(rng, 500, 8)
	orig, err := mvptree.New(vectors, mvptree.L2, mvptree.Options{Partitions: 3, LeafCapacity: 20, PathLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mvptree.SaveTree(&buf, orig, mvptree.EncodeVector); err != nil {
		t.Fatal(err)
	}
	loaded, err := mvptree.LoadTree(&buf, mvptree.L2, mvptree.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Counter().Count() != 0 {
		t.Errorf("loading computed %d distances; must be zero", loaded.Counter().Count())
	}
	q := vectors[3]
	a, b := orig.KNN(q, 7), loaded.KNN(q, 7)
	for i := range a {
		if a[i].Dist != b[i].Dist {
			t.Fatalf("KNN differs after reload at %d: %g vs %g", i, a[i].Dist, b[i].Dist)
		}
	}
}

func TestSaveLoadVPTreePublicAPI(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	orig, err := mvptree.NewVP(words, mvptree.EditDistance, mvptree.VPOptions{Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mvptree.SaveVPTree(&buf, orig, mvptree.EncodeString); err != nil {
		t.Fatal(err)
	}
	loaded, err := mvptree.LoadVPTree(&buf, mvptree.EditDistance, mvptree.DecodeString)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Range("beta", 2)
	want := orig.Range("beta", 2)
	if len(got) != len(want) {
		t.Errorf("Range after reload: %v vs %v", got, want)
	}
}

func TestLoadTreeRejectsWrongKind(t *testing.T) {
	words := []string{"a", "b", "c"}
	vp, err := mvptree.NewVP(words, mvptree.EditDistance, mvptree.VPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mvptree.SaveVPTree(&buf, vp, mvptree.EncodeString); err != nil {
		t.Fatal(err)
	}
	if _, err := mvptree.LoadTree(&buf, mvptree.EditDistance, mvptree.DecodeString); err == nil {
		t.Error("mvp Load accepted a vp-tree stream")
	}
}

func TestImageCodecPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 1))
	imgs := mvptree.SyntheticImages(rng, 20, mvptree.ImageOptions{Width: 12, Height: 12, Subjects: 2})
	orig, err := mvptree.New(imgs, mvptree.ImageL2, mvptree.Options{LeafCapacity: 4, PathLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mvptree.SaveTree(&buf, orig, mvptree.EncodeImage); err != nil {
		t.Fatal(err)
	}
	loaded, err := mvptree.LoadTree(&buf, mvptree.ImageL2, mvptree.DecodeImage)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Range(imgs[0], 1); len(got) < 1 {
		t.Errorf("self query after reload found %d images", len(got))
	}
}

func TestDynamicStorePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 1))
	vectors := mvptree.UniformVectors(rng, 300, 6)
	store, err := mvptree.NewDynamic(vectors, mvptree.L2, mvptree.DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	if err := store.Insert(v); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 301 {
		t.Fatalf("Len = %d", store.Len())
	}
	nn := store.KNN(v, 1)
	if len(nn) != 1 || nn[0].Dist != 0 {
		t.Errorf("KNN after insert = %v", nn)
	}
	n, err := store.Delete(v)
	if err != nil || n != 1 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	if got := store.Range(v, 0); len(got) != 0 {
		t.Errorf("deleted item still found: %v", got)
	}
}

func TestSaveLoadGeneralTreePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 1))
	vectors := mvptree.UniformVectors(rng, 300, 6)
	orig, err := mvptree.NewGeneral(vectors, mvptree.L2, mvptree.GeneralOptions{
		Vantages: 3, Partitions: 2, LeafCapacity: 10, PathLength: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mvptree.SaveGeneralTree(&buf, orig, mvptree.EncodeVector); err != nil {
		t.Fatal(err)
	}
	loaded, err := mvptree.LoadGeneralTree(&buf, mvptree.L2, mvptree.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Counter().Count() != 0 {
		t.Errorf("loading computed %d distances", loaded.Counter().Count())
	}
	q := vectors[5]
	a, b := orig.KNN(q, 4), loaded.KNN(q, 4)
	for i := range a {
		if a[i].Dist != b[i].Dist {
			t.Fatalf("KNN differs after reload")
		}
	}
}

func TestSaveLoadBKAndPivotTablePublicAPI(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	bk, err := mvptree.NewBK(words, mvptree.EditDistance)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mvptree.SaveBKTree(&buf, bk, mvptree.EncodeString); err != nil {
		t.Fatal(err)
	}
	bk2, err := mvptree.LoadBKTree(&buf, mvptree.EditDistance, mvptree.DecodeString)
	if err != nil {
		t.Fatal(err)
	}
	if got := bk2.Range("beta", 0); len(got) != 1 {
		t.Errorf("BK reload: %v", got)
	}

	rng := rand.New(rand.NewPCG(15, 1))
	vectors := mvptree.UniformVectors(rng, 200, 5)
	pt, err := mvptree.NewPivotTable(vectors, mvptree.L2, mvptree.PivotOptions{Pivots: 8})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := mvptree.SavePivotTable(&buf, pt, mvptree.EncodeVector); err != nil {
		t.Fatal(err)
	}
	pt2, err := mvptree.LoadPivotTable(&buf, mvptree.L2, mvptree.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if pt2.Counter().Count() != 0 {
		t.Errorf("pivot table reload computed %d distances", pt2.Counter().Count())
	}
	a, b := pt.KNN(vectors[3], 4), pt2.KNN(vectors[3], 4)
	for i := range a {
		if a[i].Dist != b[i].Dist {
			t.Fatal("pivot table KNN differs after reload")
		}
	}
}

func TestSaveLoadDynamicPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewPCG(16, 1))
	vectors := mvptree.UniformVectors(rng, 200, 5)
	store, err := mvptree.NewDynamic(vectors, mvptree.L2, mvptree.DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Insert([]float64{9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mvptree.SaveDynamic(&buf, store, mvptree.EncodeVector); err != nil {
		t.Fatal(err)
	}
	loaded, err := mvptree.LoadDynamic(&buf, mvptree.L2, mvptree.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 201 {
		t.Fatalf("Len = %d", loaded.Len())
	}
	if got := loaded.Range([]float64{9, 9, 9, 9, 9}, 0); len(got) != 1 {
		t.Errorf("inserted item lost across save/load: %v", got)
	}
}
