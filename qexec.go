package mvptree

import (
	"mvptree/internal/mvp"
	"mvptree/internal/qexec"
)

// SearchStats is the per-query filtering breakdown reported by the
// stats query variants (Tree.RangeWithStats, Tree.KNNWithStats) and
// aggregated by the batch executor. Because the distance Counter is a
// process-wide atomic shared by every goroutine querying an index,
// SearchStats — not Counter deltas — is the way to attribute distance
// computations to an individual query while others are in flight.
type SearchStats = mvp.SearchStats

// BatchOptions configure the parallel batch-query executor: the worker
// count, an optional Observer that receives one recording per query
// (each worker writes its own shard, so snapshot totals are exact for
// every worker count), and Batch — the shared-traversal micro-batch
// size. When the index implements BatchSearcher and Batch > 1, each
// worker answers its stripe in groups of Batch through one SearchBatch
// call per group; results, stats and distance counts stay
// byte-identical to the unbatched run.
type BatchOptions = qexec.Options

// BatchStats summarize a batch run: total Counter delta, batch wall
// time, per-worker query counts and aggregated SearchStats.
type BatchStats = qexec.Stats

// BatchWorkerStats is the per-worker slice of a BatchStats.
type BatchWorkerStats = qexec.WorkerStats

// ErrSharedObserver is returned by BatchRange/BatchKNN when
// opts.Observer is the same Observer already attached to the index's
// own hooks — that wiring would record every query twice (once by the
// index, once by the executor), silently doubling snapshot totals.
// Attach the Observer to one side or the other, not both.
var ErrSharedObserver = qexec.ErrSharedObserver

// BatchRange answers one range query per element of queries against a
// shared index, striped over opts.Workers goroutines. results[i] is
// exactly idx.Range(queries[i], r): the answers — and the number of
// distance computations the batch performs — are identical for every
// worker count; parallelism changes wall-clock time only. All indexes
// in this library are safe to share this way (their query paths touch
// no mutable state beyond the atomic Counter).
//
// The error is non-nil in two cases: opts.Context was cancelled before
// the batch finished (the results are partially filled and the error is
// the context's), or opts.Observer is also attached to the index's own
// hooks (qexec.ErrSharedObserver — that wiring would record every query
// twice).
func BatchRange[T any](idx Index[T], queries []T, r float64, opts BatchOptions) ([][]T, BatchStats, error) {
	return qexec.RunRange(idx, queries, r, opts)
}

// BatchKNN answers one k-nearest-neighbor query per element of queries
// against a shared index, striped over opts.Workers goroutines.
// results[i] is exactly idx.KNN(queries[i], k). Errors as in
// BatchRange.
func BatchKNN[T any](idx Index[T], queries []T, k int, opts BatchOptions) ([][]Neighbor[T], BatchStats, error) {
	return qexec.RunKNN(idx, queries, k, opts)
}
