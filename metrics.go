package mvptree

import (
	"mvptree/internal/metric"
	"mvptree/internal/pgm"
)

// Built-in metrics. Each satisfies the metric axioms; see CheckAxioms
// for validating your own.

// The facade wrappers below are distinct top-level functions from the
// internal kernels they delegate to, so they carry their own code
// pointers. Register their bounded (early-abandoning) counterparts so a
// Counter built over e.g. mvptree.L2 picks up the threshold-aware fast
// path exactly as one built over metric.L2 would.
func init() {
	metric.RegisterBounded(L1, metric.L1UpTo)
	metric.RegisterBounded(L2, metric.L2UpTo)
	metric.RegisterBounded(LInf, metric.LInfUpTo)
	metric.RegisterBounded(Canberra, metric.CanberraUpTo)
	metric.RegisterBounded(EditDistance, metric.EditUpTo)
	metric.RegisterBounded(HammingDistance, metric.HammingUpTo)
	metric.RegisterBounded(Angular, metric.AngularUpTo)
	metric.RegisterBounded(Cosine, metric.L2UpTo)

	// Quantized lower-bound shapes (WithQuantized) for the same
	// wrappers; Cosine is L2 on the caller's pre-normalized vectors.
	metric.RegisterQuantized(L1, metric.QuantL1)
	metric.RegisterQuantized(L2, metric.QuantL2)
	metric.RegisterQuantized(LInf, metric.QuantLInf)
	metric.RegisterQuantized(Cosine, metric.QuantL2)
}

// BoundedDistanceFunc computes d(a,b) with permission to stop early once
// the running value exceeds bound; see metric.BoundedDistanceFunc for
// the exact contract. Indexes probe for one when wrapping a metric in a
// Counter and use it on query paths where a distance only has to be
// compared against a threshold.
type BoundedDistanceFunc[T any] = metric.BoundedDistanceFunc[T]

// RegisterBounded associates a bounded kernel with a top-level distance
// function so Counters over fn (built afterwards) use it automatically.
// For closures, use Counter.SetBounded instead.
func RegisterBounded[T any](fn DistanceFunc[T], bounded BoundedDistanceFunc[T]) {
	metric.RegisterBounded(fn, bounded)
}

// L1 is the Manhattan distance on float64 vectors.
func L1(a, b []float64) float64 { return metric.L1(a, b) }

// L2 is the Euclidean distance on float64 vectors.
func L2(a, b []float64) float64 { return metric.L2(a, b) }

// LInf is the Chebyshev (maximum) distance on float64 vectors.
func LInf(a, b []float64) float64 { return metric.LInf(a, b) }

// Lp returns the Minkowski distance of order p ≥ 1.
func Lp(p float64) DistanceFunc[[]float64] { return metric.Lp(p) }

// WeightedLp returns a per-axis-weighted Minkowski distance of order
// p ≥ 1 with positive weights, the weighted variant the paper sketches
// for emphasizing image regions (§5.1.B).
func WeightedLp(p float64, w []float64) DistanceFunc[[]float64] { return metric.WeightedLp(p, w) }

// Scaled returns fn with every distance multiplied by a positive factor
// (the paper's distance normalization).
func Scaled[T any](fn DistanceFunc[T], factor float64) DistanceFunc[T] {
	return metric.Scaled(fn, factor)
}

// EditDistance is the Levenshtein distance on strings; integer-valued,
// so it also works with BK-trees.
func EditDistance(a, b string) float64 { return metric.Edit(a, b) }

// HammingDistance counts differing positions of two strings, extended to
// unequal lengths by the length difference; integer-valued.
func HammingDistance(a, b string) float64 { return metric.Hamming(a, b) }

// Discrete returns the 0/1 metric on any comparable type.
func Discrete[T comparable]() DistanceFunc[T] { return metric.Discrete[T]() }

// Image is an 8-bit gray-level image, the paper's second data domain.
type Image = pgm.Image

// NewImage returns a black image of the given size.
func NewImage(w, h int) *Image { return pgm.NewImage(w, h) }

// ImageL1 is the pixel-wise L1 distance between gray-level images (the
// paper treats a W×H image as a W·H-dimensional vector).
func ImageL1(a, b *Image) float64 { return pgm.L1(a, b) }

// ImageL2 is the pixel-wise Euclidean distance between gray-level
// images.
func ImageL2(a, b *Image) float64 { return pgm.L2(a, b) }

// Angular is the angle (radians) between two non-zero vectors — the
// metric form of cosine similarity. Scale-invariant; panics on zero
// vectors. A metric on normalized vectors, a pseudometric otherwise.
func Angular(a, b []float64) float64 { return metric.Angular(a, b) }

// Cosine is the chord metric for cosine similarity: the Euclidean
// distance between vectors the caller has already normalized to unit
// length (NormalizeL2 / NormalizeL2Set). On unit vectors it equals
// √(2·(1−cos θ)) — monotone in the angle, so range and kNN results
// rank identically to Angular — while remaining a true metric that
// supports early abandoning and the quantized pre-filter, which
// Angular's kernel structurally cannot.
func Cosine(a, b []float64) float64 { return metric.Cosine(a, b) }

// NormalizeL2 scales v to unit Euclidean length in place and returns
// it (zero and non-finite vectors are returned unchanged), the form
// Cosine expects.
func NormalizeL2(v []float64) []float64 { return metric.NormalizeL2(v) }

// NormalizeL2Set normalizes every vector in place and returns the
// slice.
func NormalizeL2Set(vs [][]float64) [][]float64 { return metric.NormalizeL2Set(vs) }

// RegisterQuantized declares that exact (a top-level []float64 metric
// function) admits the quantized lower-bound shape kind, so indexes
// built over it can arm the WithQuantized pre-filter. The built-in
// L1/L2/LInf/Cosine are pre-registered.
func RegisterQuantized(exact DistanceFunc[[]float64], kind metric.QuantKind) {
	metric.RegisterQuantized(exact, kind)
}

// Quantized lower-bound shapes for RegisterQuantized.
const (
	QuantL1   = metric.QuantL1
	QuantL2   = metric.QuantL2
	QuantLInf = metric.QuantLInf
)

// Jaccard is the Jaccard distance between two sets given as sorted,
// duplicate-free string slices (see NormalizeSet).
func Jaccard(a, b []string) float64 { return metric.Jaccard(a, b) }

// NormalizeSet sorts and deduplicates a string slice in place into the
// form Jaccard expects.
func NormalizeSet(s []string) []string { return metric.NormalizeSet(s) }

// Canberra is the Canberra distance on float64 vectors: the sum of
// per-dimension relative differences |aᵢ−bᵢ|/(|aᵢ|+|bᵢ|).
func Canberra(a, b []float64) float64 { return metric.Canberra(a, b) }
