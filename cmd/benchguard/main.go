// Command benchguard is the CI benchmark-regression gate. It has two
// modes:
//
//   - -mode query (the default) compares a fresh `mvpbench -queryjson`
//     report against the querybench section of the committed
//     BENCH_query.json baseline and exits nonzero if the mvp-tree's
//     range or kNN serving time regressed by more than the threshold.
//
//   - -mode cascade compares a fresh `mvpbench -cascadejson` report
//     against the cascadebench section of the committed
//     BENCH_cascade.json baseline: for every (structure, workload) row
//     present in both, the cascade-on per-query distance counts must
//     not exceed the baseline by more than the threshold. Distance
//     counts are machine-independent, so unlike the wall-clock query
//     gate this comparison is essentially exact. The bkt kNN column is
//     skipped outright (its children live in a Go map, so traversal
//     order — and how fast τ tightens — varies run to run); bkt's
//     cascade-on range count can also drift by a few distances (map
//     order decides which pivots a query registers), which the
//     generous threshold absorbs. Every other cell is bit-reproducible.
//
//   - -mode quant asserts, inside one `mvpbench -quantjson` report (a
//     fresh run or the committed BENCH_quant.json), that the quantized
//     pre-filter actually pays for itself in its target regime: for at
//     least one guarded-structure workload at dim ≥ 20 under l2, the
//     best quantized mode must cut range or kNN ns/op by the threshold
//     (default 25%) against the mode-off row of the same run. Off and
//     on rows come from the same process and machine, so the
//     comparison needs no cross-machine baseline.
//
//   - -mode batch asserts, inside one `mvpbench -batchjson` report (a
//     fresh run or the committed BENCH_batch.json), that shared-
//     traversal batch execution actually pays: on the guarded
//     structure's range workload (mvpt, l2, 64-query group), the best
//     batched ns/query must beat the sequential batch-size-1 row of
//     the same run by at least the threshold (default 0.20 = batched
//     ≥ 20% faster). Both rows come from the same process and machine,
//     so the comparison needs no cross-machine baseline. kNN rows are
//     printed for humans but not gated: best-first frontiers diverge,
//     so lockstep sharing there is workload-dependent (parity on the
//     mvp-tree), while the range DFS shares its prefix by
//     construction.
//
//   - -mode approx compares a fresh `mvpbench -approxjson` report
//     against the approxbench section of the committed
//     BENCH_approx.json baseline: for every (structure, dim, mode,
//     param) curve point present in both, the fresh recall must not
//     fall below the baseline recall by more than the threshold
//     (absolute recall points; default 0.02 = 2 points). Recall is a
//     deterministic function of the seeds, so any drop means the
//     approximate traversal itself changed.
//
// Both sides of each gate are measured with the same methodology
// (QueryBenchStudy / CascadeBenchStudy), so the comparison is
// apples-to-apples; the go_bench rows in the query baseline come from
// `go test -bench` and are reported for humans, not compared here.
// Wall-clock benchmarks on shared CI runners are noisy, which is why
// the default threshold is a generous 20% and why only a regression
// fails the gate — improvements and noise in the fast direction always
// pass.
//
// Usage:
//
//	go run ./cmd/mvpbench -experiment querybench -queryjson fresh.json
//	go run ./cmd/benchguard -baseline BENCH_query.json -fresh fresh.json
//
//	go run ./cmd/mvpbench -experiment cascadebench -cascadejson fresh.json
//	go run ./cmd/benchguard -mode cascade -baseline BENCH_cascade.json -fresh fresh.json
//
//	go run ./cmd/mvpbench -experiment approxbench -approxjson fresh.json
//	go run ./cmd/benchguard -mode approx -baseline BENCH_approx.json -fresh fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mvptree/internal/experiments"
)

// baselineFile is the committed artifact's shape: the report is nested
// under a mode-named key ("querybench" in BENCH_query.json,
// "cascadebench" in BENCH_cascade.json, "approxbench" in
// BENCH_approx.json) next to prose fields.
type baselineFile struct {
	BaselineCommit string                         `json:"baseline_commit"`
	Querybench     experiments.QueryBenchReport   `json:"querybench"`
	Cascadebench   experiments.CascadeBenchReport `json:"cascadebench"`
	Approxbench    experiments.ApproxBenchReport  `json:"approxbench"`
	Quantbench     experiments.QuantBenchReport   `json:"quantbench"`
	Batchbench     experiments.BatchBenchReport   `json:"batchbench"`
}

func main() {
	mode := flag.String("mode", "query", "gate to run: query (wall-clock serving cost), cascade (cascade-on distance counts), approx (approximate-query recall), quant (quantized pre-filter win) or batch (shared-traversal batching win)")
	baselinePath := flag.String("baseline", "", "committed baseline artifact (default BENCH_query.json, BENCH_cascade.json or BENCH_approx.json per mode)")
	freshPath := flag.String("fresh", "", "fresh report written by mvpbench -queryjson / -cascadejson / -approxjson (required)")
	structure := flag.String("structure", "mvpt(", "structure-name prefix to guard (query mode)")
	threshold := flag.Float64("threshold", 0.20, "maximum allowed regression before failing (fractional for query/cascade; absolute recall points for approx, where the default is 0.02)")
	flag.Parse()
	thresholdSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "threshold" {
			thresholdSet = true
		}
	})
	if *freshPath == "" && *mode != "quant" && *mode != "batch" {
		fmt.Fprintln(os.Stderr, "benchguard: -fresh is required")
		os.Exit(2)
	}

	switch *mode {
	case "query":
		if *baselinePath == "" {
			*baselinePath = "BENCH_query.json"
		}
		queryGate(*baselinePath, *freshPath, *structure, *threshold)
	case "cascade":
		if *baselinePath == "" {
			*baselinePath = "BENCH_cascade.json"
		}
		cascadeGate(*baselinePath, *freshPath, *threshold)
	case "approx":
		if *baselinePath == "" {
			*baselinePath = "BENCH_approx.json"
		}
		// The query/cascade gates compare fractional drift; the approx
		// gate compares recall in absolute points, so it has its own
		// default.
		t := *threshold
		if !thresholdSet {
			t = 0.02
		}
		approxGate(*baselinePath, *freshPath, t)
	case "quant":
		// The quant gate is self-contained: it asserts the fresh
		// report's own off-vs-quantized speedup, so -baseline is the
		// fallback report to check when -fresh is omitted. Its
		// threshold default is the required improvement (0.25 = the
		// best quantized mode must cut ns/op by ≥ 25%), not an
		// allowed regression.
		t := *threshold
		if !thresholdSet {
			t = 0.25
		}
		path := *freshPath
		if path == "" {
			path = *baselinePath
		}
		if path == "" {
			path = "BENCH_quant.json"
		}
		quantGate(path, *structure, t)
	case "batch":
		// Like quant, the batch gate is self-contained within one
		// report; its threshold is the required speedup fraction, not an
		// allowed regression, and the flag default (0.20) is already the
		// gate's target.
		path := *freshPath
		if path == "" {
			path = *baselinePath
		}
		if path == "" {
			path = "BENCH_batch.json"
		}
		batchGate(path, *structure, *threshold)
	default:
		fmt.Fprintf(os.Stderr, "benchguard: unknown -mode %q (want query, cascade, approx, quant or batch)\n", *mode)
		os.Exit(2)
	}
}

// queryGate compares wall-clock serving cost for one guarded structure.
func queryGate(baselinePath, freshPath, structure string, threshold float64) {
	var base baselineFile
	if err := readJSON(baselinePath, &base); err != nil {
		fatal(err)
	}
	var fresh experiments.QueryBenchReport
	if err := readJSON(freshPath, &fresh); err != nil {
		fatal(err)
	}

	baseRow, err := findRow(base.Querybench.Rows, structure, baselinePath)
	if err != nil {
		fatal(err)
	}
	freshRow, err := findRow(fresh.Rows, structure, freshPath)
	if err != nil {
		fatal(err)
	}

	if base.Querybench.N != fresh.N || base.Querybench.Dim != fresh.Dim ||
		base.Querybench.Queries != fresh.Queries {
		fatal(fmt.Errorf("workload mismatch: baseline n=%d dim=%d queries=%d vs fresh n=%d dim=%d queries=%d (rerun mvpbench with the baseline's workload flags)",
			base.Querybench.N, base.Querybench.Dim, base.Querybench.Queries,
			fresh.N, fresh.Dim, fresh.Queries))
	}

	ok := true
	ok = check("RangeMVP", "ns/op", baseRow.RangeNsPerOp, freshRow.RangeNsPerOp, threshold) && ok
	ok = check("KNNMVP", "ns/op", baseRow.KNNNsPerOp, freshRow.KNNNsPerOp, threshold) && ok
	if !ok {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL (baseline %s, commit %s)\n", baselinePath, base.BaselineCommit)
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// cascadeGate compares cascade-on per-query distance counts for every
// row shared by the baseline and the fresh report.
func cascadeGate(baselinePath, freshPath string, threshold float64) {
	var base baselineFile
	if err := readJSON(baselinePath, &base); err != nil {
		fatal(err)
	}
	var fresh experiments.CascadeBenchReport
	if err := readJSON(freshPath, &fresh); err != nil {
		fatal(err)
	}
	b := &base.Cascadebench
	if b.N != fresh.N || b.Dim != fresh.Dim || b.Queries != fresh.Queries || b.Words != fresh.Words {
		fatal(fmt.Errorf("workload mismatch: baseline n=%d dim=%d queries=%d words=%d vs fresh n=%d dim=%d queries=%d words=%d (rerun mvpbench with the baseline's workload flags)",
			b.N, b.Dim, b.Queries, b.Words, fresh.N, fresh.Dim, fresh.Queries, fresh.Words))
	}

	freshRows := make(map[string]*experiments.CascadeBenchRow, len(fresh.Rows))
	for i := range fresh.Rows {
		r := &fresh.Rows[i]
		freshRows[r.Structure+"/"+r.Workload] = r
	}

	ok := true
	compared := 0
	for i := range b.Rows {
		br := &b.Rows[i]
		key := br.Structure + "/" + br.Workload
		fr, found := freshRows[key]
		if !found {
			fmt.Fprintf(os.Stderr, "benchguard: %s: baseline row missing from fresh report\n", key)
			ok = false
			continue
		}
		compared++
		ok = check(key+" range", "dist/q", br.RangeDistOn, fr.RangeDistOn, threshold) && ok
		if br.Structure != "bkt" {
			ok = check(key+" knn", "dist/q", br.KNNDistOn, fr.KNNDistOn, threshold) && ok
		}
	}
	if compared == 0 {
		fatal(fmt.Errorf("%s: cascadebench section has no rows", baselinePath))
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL (baseline %s, commit %s)\n", baselinePath, base.BaselineCommit)
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// approxGate compares recall at every curve point shared by the
// baseline and the fresh report. Unlike the other gates the threshold
// is absolute — recall is in [0, 1], so "no more than `threshold`
// recall points below baseline" is the natural contract and avoids the
// divide-by-small-baseline instability a fractional comparison would
// have at low-recall points.
func approxGate(baselinePath, freshPath string, threshold float64) {
	var base baselineFile
	if err := readJSON(baselinePath, &base); err != nil {
		fatal(err)
	}
	var fresh experiments.ApproxBenchReport
	if err := readJSON(freshPath, &fresh); err != nil {
		fatal(err)
	}
	b := &base.Approxbench
	if b.N != fresh.N || b.Queries != fresh.Queries || b.K != fresh.K {
		fatal(fmt.Errorf("workload mismatch: baseline n=%d queries=%d k=%d vs fresh n=%d queries=%d k=%d (rerun mvpbench with the baseline's workload flags)",
			b.N, b.Queries, b.K, fresh.N, fresh.Queries, fresh.K))
	}

	freshRows := make(map[string]*experiments.ApproxBenchRow, len(fresh.Rows))
	for i := range fresh.Rows {
		r := &fresh.Rows[i]
		freshRows[approxKey(r)] = r
	}

	ok := true
	compared := 0
	for i := range b.Rows {
		br := &b.Rows[i]
		key := approxKey(br)
		fr, found := freshRows[key]
		if !found {
			fmt.Fprintf(os.Stderr, "benchguard: %s: baseline row missing from fresh report\n", key)
			ok = false
			continue
		}
		compared++
		drop := br.Recall - fr.Recall
		status := "ok"
		if drop > threshold {
			status = fmt.Sprintf("RECALL REGRESSION (> %.1f points)", threshold*100)
			ok = false
		}
		fmt.Printf("%-28s baseline recall %6.1f%%   fresh %6.1f%%   %+5.1f pts   %s\n",
			key, 100*br.Recall, 100*fr.Recall, 100*(fr.Recall-br.Recall), status)
	}
	if compared == 0 {
		fatal(fmt.Errorf("%s: approxbench section has no rows", baselinePath))
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL (baseline %s, commit %s)\n", baselinePath, base.BaselineCommit)
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// quantGate asserts the quantized pre-filter's win inside one report:
// for every guarded-structure workload at dim ≥ 20 under l2 — the
// bandwidth-bound regime the filter targets — the best quantized mode
// must cut range or kNN ns/op by at least `required` relative to the
// mode-off row of the same workload. The gate passes if any guarded
// workload meets the target (the filter is regime-dependent by design:
// small cache-resident configs legitimately do not improve), and fails
// if no guarded workload exists or none meets it.
func quantGate(path, structure string, required float64) {
	// Accept both the committed artifact (report nested under
	// "quantbench") and a bare mvpbench -quantjson report.
	var base baselineFile
	if err := readJSON(path, &base); err != nil {
		fatal(err)
	}
	rep := base.Quantbench
	if len(rep.Rows) == 0 {
		if err := readJSON(path, &rep); err != nil {
			fatal(err)
		}
	}
	if len(rep.Rows) == 0 {
		fatal(fmt.Errorf("%s: no quantbench rows", path))
	}

	type cell struct{ off, bestRange, bestKNN float64 }
	cells := make(map[string]*cell)
	type offKey struct{ rangeNs, knnNs float64 }
	offs := make(map[string]offKey)
	var keys []string
	for i := range rep.Rows {
		r := &rep.Rows[i]
		baseName, _, _ := strings.Cut(r.Structure, "+")
		if !strings.HasPrefix(baseName, structure) || r.Dim < 20 || r.Metric != "l2" {
			continue
		}
		key := fmt.Sprintf("%s/%s/dim=%d", baseName, r.Metric, r.Dim)
		if r.Mode == "off" {
			offs[key] = offKey{r.RangeNsPerOp, r.KNNNsPerOp}
			keys = append(keys, key)
			continue
		}
		c := cells[key]
		if c == nil {
			c = &cell{bestRange: r.RangeNsPerOp, bestKNN: r.KNNNsPerOp}
			cells[key] = c
			continue
		}
		if r.RangeNsPerOp < c.bestRange {
			c.bestRange = r.RangeNsPerOp
		}
		if r.KNNNsPerOp < c.bestKNN {
			c.bestKNN = r.KNNNsPerOp
		}
	}
	if len(keys) == 0 {
		fatal(fmt.Errorf("%s: no guarded rows (structure prefix %q, dim >= 20, metric l2)", path, structure))
	}
	met := false
	for _, key := range keys {
		off, okOff := offs[key]
		c := cells[key]
		if !okOff || c == nil || off.rangeNs <= 0 || off.knnNs <= 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s: incomplete off/on rows, skipping\n", key)
			continue
		}
		rangeCut := 1 - c.bestRange/off.rangeNs
		knnCut := 1 - c.bestKNN/off.knnNs
		status := "below target"
		if rangeCut >= required || knnCut >= required {
			status = "MEETS TARGET"
			met = true
		}
		fmt.Printf("%-28s range %9.0f -> %9.0f ns/op (%+5.1f%%)   knn %9.0f -> %9.0f ns/op (%+5.1f%%)   %s\n",
			key, off.rangeNs, c.bestRange, -100*rangeCut, off.knnNs, c.bestKNN, -100*knnCut, status)
	}
	if !met {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL — no guarded workload cut range or knn ns/op by >= %.0f%% (%s)\n", required*100, path)
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// batchGate asserts shared-traversal batching's win inside one report:
// the guarded structure's best batched range ns/query must beat its
// sequential (batch-size-1) row by at least `required`. kNN rows are
// reported but not gated — lockstep sharing under diverging best-first
// frontiers is workload-dependent, and the batch layer's contract there
// is byte-identity at no required speedup.
func batchGate(path, structure string, required float64) {
	// Accept both the committed artifact (report nested under
	// "batchbench") and a bare mvpbench -batchjson report.
	var base baselineFile
	if err := readJSON(path, &base); err != nil {
		fatal(err)
	}
	rep := base.Batchbench
	if len(rep.Rows) == 0 {
		if err := readJSON(path, &rep); err != nil {
			fatal(err)
		}
	}
	if len(rep.Rows) == 0 {
		fatal(fmt.Errorf("%s: no batchbench rows", path))
	}

	type cell struct {
		seq, best float64
		bestB     int
	}
	cells := make(map[string]*cell)
	var modes []string
	for i := range rep.Rows {
		r := &rep.Rows[i]
		if !strings.HasPrefix(r.Structure, structure) {
			continue
		}
		c := cells[r.Mode]
		if c == nil {
			c = &cell{}
			cells[r.Mode] = c
			modes = append(modes, r.Mode)
		}
		if r.BatchSize == 1 {
			c.seq = r.NsPerQuery
		} else if c.best == 0 || r.NsPerQuery < c.best {
			c.best, c.bestB = r.NsPerQuery, r.BatchSize
		}
	}
	if len(modes) == 0 {
		fatal(fmt.Errorf("%s: no batchbench rows with structure prefix %q", path, structure))
	}
	ok := true
	for _, mode := range modes {
		c := cells[mode]
		if c.seq <= 0 || c.best <= 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s: incomplete sequential/batched rows, skipping\n", mode)
			if mode == "range" {
				ok = false
			}
			continue
		}
		speedup := c.seq / c.best
		status := "reported only"
		if mode == "range" {
			if speedup >= 1+required {
				status = "MEETS TARGET"
			} else {
				status = fmt.Sprintf("BELOW TARGET (< %.2fx)", 1+required)
				ok = false
			}
		}
		fmt.Printf("%-8s seq %10.0f ns/query   best batched %10.0f ns/query (B=%d)   %5.2fx   %s\n",
			mode, c.seq, c.best, c.bestB, speedup, status)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL — batched range execution must be >= %.0f%% faster than sequential (%s)\n", required*100, path)
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// approxKey identifies one curve point across reports.
func approxKey(r *experiments.ApproxBenchRow) string {
	return fmt.Sprintf("%s/dim=%d/%s/%s=%g", r.Structure, r.Dim, r.Workload, r.Mode, r.Param)
}

// check prints one comparison line and reports whether fresh is within
// threshold of base. A zero or negative baseline cannot be compared and
// fails loudly rather than dividing by it.
func check(name, unit string, base, fresh, threshold float64) bool {
	if base <= 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s baseline %s is %.1f, cannot compare\n", name, unit, base)
		return false
	}
	delta := (fresh - base) / base
	status := "ok"
	if delta > threshold {
		status = fmt.Sprintf("REGRESSION (> %.0f%%)", threshold*100)
	}
	fmt.Printf("%-22s baseline %12.1f %s   fresh %12.1f %s   %+6.1f%%   %s\n",
		name, base, unit, fresh, unit, delta*100, status)
	return delta <= threshold
}

func findRow(rows []experiments.QueryBenchRow, prefix, path string) (*experiments.QueryBenchRow, error) {
	for i := range rows {
		if strings.HasPrefix(rows[i].Structure, prefix) {
			return &rows[i], nil
		}
	}
	return nil, fmt.Errorf("%s: no querybench row with structure prefix %q", path, prefix)
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
