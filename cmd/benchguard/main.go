// Command benchguard is the CI benchmark-regression gate: it compares a
// fresh `mvpbench -queryjson` report against the querybench section of
// the committed BENCH_query.json baseline and exits nonzero if the
// mvp-tree's range or kNN serving time regressed by more than the
// threshold.
//
// Both sides are measured with the same querybench methodology
// (QueryBenchStudy: warm-up pass, then QueryBenchRounds timed passes on
// one goroutine), so the comparison is apples-to-apples; the go_bench
// rows in the baseline come from `go test -bench` and are reported for
// humans, not compared here. Wall-clock benchmarks on shared CI runners
// are noisy, which is why the default threshold is a generous 20% and
// why only a regression fails the gate — improvements and noise in the
// fast direction always pass.
//
// Usage:
//
//	go run ./cmd/mvpbench -experiment querybench -queryjson fresh.json
//	go run ./cmd/benchguard -baseline BENCH_query.json -fresh fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mvptree/internal/experiments"
)

// baselineFile is the committed artifact's shape: the querybench report
// is nested under "querybench" next to prose and go_bench rows.
type baselineFile struct {
	BaselineCommit string                       `json:"baseline_commit"`
	Querybench     experiments.QueryBenchReport `json:"querybench"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_query.json", "committed baseline artifact (querybench section is compared)")
	freshPath := flag.String("fresh", "", "fresh report written by mvpbench -queryjson (required)")
	structure := flag.String("structure", "mvpt(", "structure-name prefix to guard")
	threshold := flag.Float64("threshold", 0.20, "maximum allowed fractional ns/op regression before failing")
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -fresh is required")
		os.Exit(2)
	}

	var base baselineFile
	if err := readJSON(*baselinePath, &base); err != nil {
		fatal(err)
	}
	var fresh experiments.QueryBenchReport
	if err := readJSON(*freshPath, &fresh); err != nil {
		fatal(err)
	}

	baseRow, err := findRow(base.Querybench.Rows, *structure, *baselinePath)
	if err != nil {
		fatal(err)
	}
	freshRow, err := findRow(fresh.Rows, *structure, *freshPath)
	if err != nil {
		fatal(err)
	}

	if base.Querybench.N != fresh.N || base.Querybench.Dim != fresh.Dim ||
		base.Querybench.Queries != fresh.Queries {
		fatal(fmt.Errorf("workload mismatch: baseline n=%d dim=%d queries=%d vs fresh n=%d dim=%d queries=%d (rerun mvpbench with the baseline's workload flags)",
			base.Querybench.N, base.Querybench.Dim, base.Querybench.Queries,
			fresh.N, fresh.Dim, fresh.Queries))
	}

	ok := true
	ok = check("RangeMVP", baseRow.RangeNsPerOp, freshRow.RangeNsPerOp, *threshold) && ok
	ok = check("KNNMVP", baseRow.KNNNsPerOp, freshRow.KNNNsPerOp, *threshold) && ok
	if !ok {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL (baseline %s, commit %s)\n", *baselinePath, base.BaselineCommit)
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// check prints one comparison line and reports whether fresh is within
// threshold of base. A zero or negative baseline cannot be compared and
// fails loudly rather than dividing by it.
func check(name string, base, fresh, threshold float64) bool {
	if base <= 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s baseline ns/op is %.1f, cannot compare\n", name, base)
		return false
	}
	delta := (fresh - base) / base
	status := "ok"
	if delta > threshold {
		status = fmt.Sprintf("REGRESSION (> %.0f%%)", threshold*100)
	}
	fmt.Printf("%-9s baseline %12.1f ns/op   fresh %12.1f ns/op   %+6.1f%%   %s\n",
		name, base, fresh, delta*100, status)
	return delta <= threshold
}

func findRow(rows []experiments.QueryBenchRow, prefix, path string) (*experiments.QueryBenchRow, error) {
	for i := range rows {
		if strings.HasPrefix(rows[i].Structure, prefix) {
			return &rows[i], nil
		}
	}
	return nil, fmt.Errorf("%s: no querybench row with structure prefix %q", path, prefix)
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
