package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a shutdown func that cancels the context and waits for run
// to return, failing the test on a non-nil error.
func startDaemon(t *testing.T, args ...string) (string, *bytes.Buffer, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, &out, append([]string{"-addr", "127.0.0.1:0"}, args...), ready) }()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return base, &out, func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("run returned %v\noutput:\n%s", err, out.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func query(dim int, fill float64) []float64 {
	q := make([]float64, dim)
	for i := range q {
		q[i] = fill
	}
	return q
}

func TestDaemonSmoke(t *testing.T) {
	const dim = 8
	base, out, shutdown := startDaemon(t, "-n", "500", "-dim", fmt.Sprint(dim), "-shards", "2")

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: resp=%v err=%v", resp, err)
	} else {
		resp.Body.Close()
	}

	resp, body := postJSON(t, base+"/range", map[string]any{"query": query(dim, 0.5), "r": 0.8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range: status %d body %s", resp.StatusCode, body)
	}
	var rangeReply struct {
		Results [][]float64 `json:"results"`
		Count   int         `json:"count"`
	}
	if err := json.Unmarshal(body, &rangeReply); err != nil {
		t.Fatalf("range reply: %v (%s)", err, body)
	}
	if rangeReply.Count != len(rangeReply.Results) {
		t.Fatalf("range count %d != %d results", rangeReply.Count, len(rangeReply.Results))
	}

	resp, body = postJSON(t, base+"/knn", map[string]any{"query": query(dim, 0.5), "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("knn: status %d body %s", resp.StatusCode, body)
	}
	var knnReply struct {
		Neighbors []struct {
			Dist float64 `json:"dist"`
		} `json:"neighbors"`
	}
	if err := json.Unmarshal(body, &knnReply); err != nil {
		t.Fatalf("knn reply: %v (%s)", err, body)
	}
	if len(knnReply.Neighbors) != 3 {
		t.Fatalf("knn returned %d neighbors, want 3", len(knnReply.Neighbors))
	}

	resp, body = postJSON(t, base+"/range", map[string]any{"query": query(3, 0.5), "r": 0.8})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dim query: status %d body %s", resp.StatusCode, body)
	}

	sresp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Range struct {
			Queries int64 `json:"queries"`
		} `json:"range"`
		KNN struct {
			Queries int64 `json:"queries"`
		} `json:"knn"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Range.Queries != 1 || stats.KNN.Queries != 1 {
		t.Fatalf("stats: range=%d knn=%d, want 1/1", stats.Range.Queries, stats.KNN.Queries)
	}

	// No -dir: reload must be a clean 501, not a crash.
	resp, body = postJSON(t, base+"/admin/reload", nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without -dir: status %d body %s", resp.StatusCode, body)
	}

	shutdown()
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("missing shutdown log:\n%s", out.String())
	}
}

func TestDaemonSnapshotRoundTrip(t *testing.T) {
	const dim = 6
	dir := t.TempDir()

	// First run builds the synthetic index and saves a snapshot.
	base, out, shutdown := startDaemon(t, "-n", "400", "-dim", fmt.Sprint(dim), "-shards", "2", "-dir", dir)
	resp, body := postJSON(t, base+"/admin/reload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d body %s", resp.StatusCode, body)
	}
	var reload struct {
		Items int   `json:"items"`
		Swaps int64 `json:"swaps"`
	}
	if err := json.Unmarshal(body, &reload); err != nil {
		t.Fatal(err)
	}
	if reload.Items != 400 || reload.Swaps != 1 {
		t.Fatalf("reload reply: %+v", reload)
	}
	shutdown()
	if !strings.Contains(out.String(), "snapshot saved") {
		t.Fatalf("first run did not save a snapshot:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}

	// Second run must load from disk, not rebuild.
	base, out2, shutdown2 := startDaemon(t, "-dim", fmt.Sprint(dim), "-dir", dir)
	defer shutdown2()
	if !strings.Contains(out2.String(), "loaded 400 items") {
		t.Fatalf("second run did not load the snapshot:\n%s", out2.String())
	}
	resp, body = postJSON(t, base+"/range", map[string]any{"query": query(dim, 0.5), "r": 0.8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range after load: status %d body %s", resp.StatusCode, body)
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	err := run(context.Background(), &bytes.Buffer{}, []string{"-metric", "cosine"}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown metric") {
		t.Fatalf("bad metric: err=%v", err)
	}
	err = run(context.Background(), &bytes.Buffer{}, []string{"-dim", "0"}, nil)
	if err == nil {
		t.Fatal("dim 0 accepted")
	}
}
