// Command mvpserve is the network serving daemon: a JSON-over-HTTP
// query server over a sharded mvp-tree index, with bounded admission,
// micro-batched execution, live telemetry and zero-downtime snapshot
// reload.
//
// Usage:
//
//	mvpserve -addr :8080 -n 50000 -dim 20 -shards 4
//	mvpserve -addr :8080 -dir /var/lib/mvptree/snap -dim 20
//
// With -dir pointing at a directory containing a snapshot (written by a
// previous run or by shard.Index.SaveDir), the index is loaded from
// disk; otherwise a synthetic uniform-vector index is built at startup
// and — when -dir is set — saved there, so a later POST /admin/reload
// (or a fresh process) can pick it up. Reload loads the snapshot beside
// the serving index and swaps it in atomically: in-flight requests
// finish on the old index, no request fails.
//
// Endpoints:
//
//	POST /range        {"query": [...], "r": 0.5, "epsilon": 0.2, "budget": 500}
//	POST /knn          {"query": [...], "k": 5, "epsilon": 0.2, "budget": 500}
//	GET  /stats        admission counters + observer snapshot
//	GET  /healthz      liveness probe
//	POST /admin/reload swap in the snapshot at -dir
//	GET  /debug/vars   expvar, including the observer snapshot
//
// The process exits cleanly on SIGINT/SIGTERM: the listener stops, in
// flight requests drain, the batchers shut down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mvptree/internal/cascade"
	"mvptree/internal/codec"
	"mvptree/internal/dataset"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/quant"
	"mvptree/internal/serve"
	"mvptree/internal/shard"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Stdout, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "mvpserve:", err)
		os.Exit(1)
	}
}

func vectorMetric(name string) (metric.DistanceFunc[[]float64], error) {
	switch name {
	case "l1":
		return metric.L1, nil
	case "l2":
		return metric.L2, nil
	case "linf":
		return metric.LInf, nil
	default:
		return nil, fmt.Errorf("unknown metric %q (want l1, l2 or linf)", name)
	}
}

// run starts the daemon and blocks until ctx is cancelled. When ready
// is non-nil it receives the bound listen address once the server
// accepts connections (the test hook; main passes nil).
func run(ctx context.Context, out io.Writer, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("mvpserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address")
		dir        = fs.String("dir", "", "snapshot directory: load the index from it if it holds a manifest, else build and save into it; /admin/reload re-reads it")
		n          = fs.Int("n", 20000, "synthetic dataset size when building at startup")
		dim        = fs.Int("dim", 20, "vector dimensionality (must match the snapshot when loading)")
		dataSeed   = fs.Uint64("dataseed", 1, "synthetic dataset seed")
		metricName = fs.String("metric", "l2", "vector metric: l1, l2 or linf")
		shards     = fs.Int("shards", 4, "shard count for a built index")
		buildW     = fs.Int("buildworkers", 0, "construction goroutines (0 = GOMAXPROCS)")
		leafCap    = fs.Int("leafcap", 50, "mvp-tree leaf capacity")
		partitions = fs.Int("partitions", 3, "mvp-tree partitions per vantage point")
		pathLen    = fs.Int("pathlen", 5, "mvp-tree retained path length")
		maxBatch   = fs.Int("maxbatch", 32, "max queries per executed batch")
		batch      = fs.Int("batch", 0, "shared-traversal batch size (0 = maxbatch, 1 = per-query execution)")
		maxWait    = fs.Duration("maxwait", 2*time.Millisecond, "batching window")
		queue      = fs.Int("queue", 256, "per-endpoint admission queue capacity (full queue = 503)")
		workers    = fs.Int("workers", 0, "executor goroutines per batch (0 = GOMAXPROCS)")
		retryAfter = fs.Duration("retryafter", time.Second, "Retry-After hint on 503 rejections")
		casOn      = fs.Bool("cascade", false, "enable the cross-query bound cascade on every shard (identical results, fewer distance computations per query)")
		casPivots  = fs.Int("cascadepivots", 0, "cascade pivot cap per shard (0 = default)")
		quantize   = fs.String("quantize", "off", "quantized lower-bound pre-filter on every shard: off, sq8 or f32 (identical results, less leaf-scan memory traffic)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dim <= 0 {
		return fmt.Errorf("-dim must be positive")
	}
	qmode, err := quant.ParseMode(*quantize)
	if err != nil {
		return fmt.Errorf("-quantize: %w", err)
	}
	distFn, err := vectorMetric(*metricName)
	if err != nil {
		return err
	}
	be := shard.MVP[[]float64](mvp.Options{
		Partitions:   *partitions,
		LeafCapacity: *leafCap,
		PathLength:   *pathLen,
	})

	casOpts := cascade.Options{Pivots: *casPivots, Workers: *buildW}
	load := func() (index.StatsIndex[[]float64], error) {
		x, err := shard.LoadDir(*dir, metric.NewCounter(distFn), be, codec.DecodeVector)
		if err != nil {
			return nil, err
		}
		// The cascade and quantized arenas are not serialized; rebuild
		// them on every load (and reload) so a swapped-in index serves
		// with the same filters.
		if *casOn {
			if err := x.EnableCascade(casOpts); err != nil {
				return nil, err
			}
		}
		if qmode != quant.Off {
			if err := x.EnableQuantize(qmode); err != nil {
				return nil, err
			}
		}
		return x, nil
	}

	var idx index.StatsIndex[[]float64]
	switch {
	case *dir != "" && hasManifest(*dir):
		start := time.Now()
		idx, err = load()
		if err != nil {
			return fmt.Errorf("loading snapshot from %s: %w", *dir, err)
		}
		fmt.Fprintf(out, "mvpserve: loaded %d items from %s in %v\n", idx.Len(), *dir, time.Since(start).Round(time.Millisecond))
	default:
		start := time.Now()
		rng := rand.New(rand.NewPCG(*dataSeed, 0))
		items := dataset.UniformVectors(rng, *n, *dim)
		x, bs, err := shard.NewWithStats(items, metric.NewCounter(distFn), be, shard.Options{
			Shards: *shards, Workers: *buildW, Seed: *dataSeed,
		})
		if err != nil {
			return fmt.Errorf("building index: %w", err)
		}
		fmt.Fprintf(out, "mvpserve: built %d items / %d shards in %v (%d distances)\n",
			x.Len(), x.Shards(), time.Since(start).Round(time.Millisecond), bs.Distances)
		if *dir != "" {
			if err := x.SaveDir(*dir, be, codec.EncodeVector); err != nil {
				return fmt.Errorf("saving snapshot to %s: %w", *dir, err)
			}
			fmt.Fprintf(out, "mvpserve: snapshot saved to %s\n", *dir)
		}
		if *casOn {
			before := x.DistanceCount()
			if err := x.EnableCascade(casOpts); err != nil {
				return fmt.Errorf("enabling cascade: %w", err)
			}
			fmt.Fprintf(out, "mvpserve: cascade enabled (%d precomputed distances)\n", x.DistanceCount()-before)
		}
		if qmode != quant.Off {
			if err := x.EnableQuantize(qmode); err != nil {
				return fmt.Errorf("enabling quantize: %w", err)
			}
			fmt.Fprintf(out, "mvpserve: quantized pre-filter enabled (%s)\n", qmode)
		}
		idx = x
	}

	s := serve.New[[]float64](idx, serve.VectorCodec(*dim), serve.Options{
		MaxBatch:   *maxBatch,
		Batch:      *batch,
		MaxWait:    *maxWait,
		Queue:      *queue,
		Workers:    *workers,
		RetryAfter: *retryAfter,
		ExpvarName: "mvpserve",
	})
	defer s.Close()
	if *dir != "" {
		s.SetReloader(load)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(out, "mvpserve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "mvpserve: shutting down\n")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	s.Close()
	st := s.Stats()
	fmt.Fprintf(out, "mvpserve: served %d queries (%d range, %d knn), rejected %d, %d swaps\n",
		st.Range.Queries+st.KNN.Queries, st.Range.Queries, st.KNN.Queries,
		st.Range.Rejected+st.KNN.Rejected, st.Swaps)
	return nil
}

func hasManifest(dir string) bool {
	_, err := os.Stat(dir + string(os.PathSeparator) + "manifest.json")
	return err == nil
}
