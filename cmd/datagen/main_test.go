package main

import (
	"os"
	"path/filepath"
	"testing"

	"mvptree/internal/pgm"
	"mvptree/internal/vector"
)

func TestGenerateUniformVectors(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "vecs.txt")
	if err := run([]string{"-kind", "uniform", "-n", "50", "-dim", "7", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	vs, err := vector.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 50 || len(vs[0]) != 7 {
		t.Errorf("wrote %d vectors of dim %d", len(vs), len(vs[0]))
	}
}

func TestGenerateClusteredVectors(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "c.txt")
	if err := run([]string{"-kind", "clustered", "-n", "40", "-dim", "3", "-cluster", "10", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(out)
	defer f.Close()
	vs, err := vector.ReadAll(f)
	if err != nil || len(vs) != 40 {
		t.Errorf("clustered output: %d vectors, %v", len(vs), err)
	}
}

func TestGenerateImages(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "imgs")
	if err := run([]string{"-kind", "images", "-n", "5", "-imgdim", "8", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("wrote %d files", len(entries))
	}
	f, err := os.Open(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	im, err := pgm.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if im.Width != 8 || im.Height != 8 {
		t.Errorf("image dims %dx%d", im.Width, im.Height)
	}
}

func TestGenerateWords(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "w.txt")
	if err := run([]string{"-kind", "words", "-n", "30", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if lines := len(splitNonEmpty(string(data))); lines != 30 {
		t.Errorf("wrote %d words", lines)
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	return out
}

func TestRejectsBadArguments(t *testing.T) {
	cases := [][]string{
		{"-kind", "uniform"},                                      // no -out
		{"-kind", "nonsense", "-out", "/tmp/x"},                   // bad kind
		{"-kind", "uniform", "-out", "/nonexistent/dir/file.txt"}, // unwritable
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.txt"), filepath.Join(dir, "b.txt")
	for _, out := range []string{a, b} {
		if err := run([]string{"-kind", "uniform", "-n", "20", "-dim", "4", "-seed", "5", "-out", out}); err != nil {
			t.Fatal(err)
		}
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Error("same seed produced different output")
	}
}
