// Command datagen generates the paper's workloads to files: uniform or
// clustered vectors as one-vector-per-line text, synthetic gray-level
// images as binary PGM files, or word corpora as one word per line.
//
// Usage:
//
//	datagen -kind uniform -n 50000 -dim 20 -out vectors.txt
//	datagen -kind clustered -n 50000 -dim 20 -cluster 1000 -eps 0.15 -out clustered.txt
//	datagen -kind images -n 1151 -imgdim 64 -subjects 12 -out imgdir/
//	datagen -kind words -n 10000 -out words.txt
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"

	"mvptree/internal/dataset"
	"mvptree/internal/pgm"
	"mvptree/internal/vector"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "uniform", "uniform | clustered | images | words")
		n        = fs.Int("n", 1000, "number of items to generate")
		dim      = fs.Int("dim", 20, "vector dimensionality")
		cluster  = fs.Int("cluster", 100, "cluster size (clustered)")
		eps      = fs.Float64("eps", 0.15, "perturbation amplitude (clustered)")
		imgDim   = fs.Int("imgdim", 64, "image side length (images)")
		subjects = fs.Int("subjects", 12, "distinct subjects (images)")
		seed     = fs.Uint64("seed", 1997, "generation seed")
		out      = fs.String("out", "", "output file, or directory for images (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	rng := rand.New(rand.NewPCG(*seed, 1))

	switch *kind {
	case "uniform":
		return writeVectors(*out, dataset.UniformVectors(rng, *n, *dim))
	case "clustered":
		return writeVectors(*out, dataset.ClusteredVectors(rng, *n, *dim, *cluster, *eps))
	case "images":
		imgs := dataset.SyntheticImages(rng, *n, dataset.ImageOptions{
			Width: *imgDim, Height: *imgDim, Subjects: *subjects,
		})
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		for i, im := range imgs {
			path := filepath.Join(*out, fmt.Sprintf("img%05d.pgm", i))
			if err := writePGM(path, im); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d PGM images to %s\n", len(imgs), *out)
		return nil
	case "words":
		words := dataset.Words(rng, *n, dataset.WordOptions{MisspellingsPer: 2})
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, w := range words {
			if _, err := fmt.Fprintln(f, w); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d words to %s\n", len(words), *out)
		return f.Close()
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}

func writeVectors(path string, vs [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := vector.WriteAll(f, vs); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d vectors to %s\n", len(vs), path)
	return nil
}

func writePGM(path string, im *pgm.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pgm.Encode(f, im); err != nil {
		return err
	}
	return f.Close()
}
