// Command mvpquery builds an index over a vector or word file and
// answers similarity queries from the command line, reporting the
// results and the number of distance computations each query cost.
//
// Usage:
//
//	mvpquery -data vectors.txt -index mvp -range 0.3 -query "0.5 0.5 ..."
//	mvpquery -data vectors.txt -index vp -knn 10 -query "0.5 0.5 ..."
//	mvpquery -data words.txt -metric edit -index bk -range 2 -query hello
//
// A built mvp or vp index can be persisted and reloaded, skipping
// reconstruction (and all of its distance computations):
//
//	mvpquery -data vectors.txt -index mvp -saveindex idx.mvpt -range 0.3 -query "..."
//	mvpquery -loadindex idx.mvpt -index mvp -range 0.3 -query "..."
//
// With -query omitted, queries are read one per line from stdin.
// -stats adds each query's filtering breakdown (nodes visited, shell
// prunes, leaf filters) to the text output or JSON object.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mvptree"
	"mvptree/internal/vector"
)

func main() {
	if err := run(os.Stdout, os.Stdin, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mvpquery:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, in io.Reader, args []string) error {
	fs := flag.NewFlagSet("mvpquery", flag.ContinueOnError)
	var (
		dataPath = fs.String("data", "", "dataset file: vectors (one per line) or words (required)")
		metricID = fs.String("metric", "l2", "l1 | l2 | linf | edit | hamming")
		indexID  = fs.String("index", "mvp", "mvp | gmvp | vp | gh | gnat | ball | bk | laesa | linear")
		rangeR   = fs.Float64("range", -1, "range query radius")
		knnK     = fs.Int("knn", 0, "k-nearest-neighbor query size")
		queryStr = fs.String("query", "", "query item; stdin if omitted")
		m        = fs.Int("m", 3, "mvp/gmvp partitions / vp order")
		v        = fs.Int("v", 2, "gmvp vantage points per node")
		k        = fs.Int("k", 80, "mvp/gh/gnat leaf capacity")
		p        = fs.Int("p", 5, "mvp retained path length")
		seed     = fs.Uint64("seed", 101, "construction seed")
		maxShow  = fs.Int("show", 10, "maximum results printed per query")
		saveIdx  = fs.String("saveindex", "", "write the built index (mvp or vp only) to this file")
		jsonOut  = fs.Bool("json", false, "emit one JSON object per query instead of text")
		stats    = fs.Bool("stats", false, "report each query's filtering breakdown (nodes, prunes, leaf filters)")
		loadIdx  = fs.String("loadindex", "", "load the index from this file instead of building from -data")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" && *loadIdx == "" {
		return fmt.Errorf("-data (or -loadindex) is required")
	}
	if *loadIdx != "" && *saveIdx != "" {
		return fmt.Errorf("-saveindex and -loadindex are mutually exclusive")
	}
	if (*rangeR < 0) == (*knnK <= 0) {
		return fmt.Errorf("specify exactly one of -range or -knn")
	}

	stringMetric := *metricID == "edit" || *metricID == "hamming"
	if stringMetric {
		var dist mvptree.DistanceFunc[string]
		if *metricID == "edit" {
			dist = mvptree.EditDistance
		} else {
			dist = mvptree.HammingDistance
		}
		var idx counted[string]
		var err error
		if *loadIdx != "" {
			idx, err = loadIndex(*loadIdx, *indexID, dist, mvptree.DecodeString)
		} else {
			var words []string
			words, err = readLines(*dataPath)
			if err != nil {
				return err
			}
			idx, err = buildIndex(words, dist, *indexID, *v, *m, *k, *p, *seed)
			if err == nil && *saveIdx != "" {
				err = saveIndex(*saveIdx, *indexID, idx, mvptree.EncodeString)
			}
		}
		if err != nil {
			return err
		}
		return serve(out, in, idx, func(s string) (string, error) { return s, nil },
			func(w string) string { return w }, *queryStr, *rangeR, *knnK, *maxShow, *jsonOut, *stats)
	}

	var dist mvptree.DistanceFunc[[]float64]
	switch *metricID {
	case "l1":
		dist = mvptree.L1
	case "l2":
		dist = mvptree.L2
	case "linf":
		dist = mvptree.LInf
	default:
		return fmt.Errorf("unknown vector metric %q", *metricID)
	}
	var idx counted[[]float64]
	dim := 0 // query dimension check only when the dataset was read
	if *loadIdx != "" {
		var err error
		idx, err = loadIndex(*loadIdx, *indexID, dist, mvptree.DecodeVector)
		if err != nil {
			return err
		}
	} else {
		f, err := os.Open(*dataPath)
		if err != nil {
			return err
		}
		vectors, err := vector.ReadAll(f)
		f.Close()
		if err != nil {
			return err
		}
		if len(vectors) == 0 {
			return fmt.Errorf("no vectors in %s", *dataPath)
		}
		dim = len(vectors[0])
		idx, err = buildIndex(vectors, dist, *indexID, *v, *m, *k, *p, *seed)
		if err != nil {
			return err
		}
		if *saveIdx != "" {
			if err := saveIndex(*saveIdx, *indexID, idx, mvptree.EncodeVector); err != nil {
				return err
			}
		}
	}
	parse := func(s string) ([]float64, error) {
		v, err := vector.Parse(s)
		if err != nil {
			return nil, err
		}
		if dim > 0 && len(v) != dim {
			return nil, fmt.Errorf("query has %d coordinates, dataset has %d", len(v), dim)
		}
		return v, nil
	}
	return serve(out, in, idx, parse, vector.Format, *queryStr, *rangeR, *knnK, *maxShow, *jsonOut, *stats)
}

// saveIndex persists a just-built mvp or vp index.
func saveIndex[T any](path, id string, idx counted[T], enc mvptree.ItemEncoder[T]) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch t := idx.(type) {
	case *mvptree.Tree[T]:
		err = mvptree.SaveTree(f, t, enc)
	case *mvptree.VPTree[T]:
		err = mvptree.SaveVPTree(f, t, enc)
	default:
		return fmt.Errorf("index %q does not support -saveindex (mvp and vp only)", id)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// loadIndex reads a persisted mvp or vp index.
func loadIndex[T any](path, id string, dist mvptree.DistanceFunc[T], dec mvptree.ItemDecoder[T]) (counted[T], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch id {
	case "mvp":
		return mvptree.LoadTree(f, dist, dec)
	case "vp":
		return mvptree.LoadVPTree(f, dist, dec)
	default:
		return nil, fmt.Errorf("index %q does not support -loadindex (mvp and vp only)", id)
	}
}

// counted is the read surface every index here provides.
type counted[T any] interface {
	mvptree.Index[T]
	Counter() *mvptree.Counter[T]
}

func buildIndex[T any](items []T, dist mvptree.DistanceFunc[T], id string, v, m, k, p int, seed uint64) (counted[T], error) {
	switch id {
	case "mvp":
		return mvptree.New(items, dist, mvptree.Options{Partitions: m, LeafCapacity: k, PathLength: p, Build: mvptree.BuildOptions{Seed: seed}})
	case "gmvp":
		return mvptree.NewGeneral(items, dist, mvptree.GeneralOptions{
			Vantages: v, Partitions: m, LeafCapacity: k, PathLength: p, Build: mvptree.BuildOptions{Seed: seed},
		})
	case "vp":
		return mvptree.NewVP(items, dist, mvptree.VPOptions{Order: m, Build: mvptree.BuildOptions{Seed: seed}})
	case "gh":
		return mvptree.NewGH(items, dist, mvptree.GHOptions{LeafCapacity: k, Build: mvptree.BuildOptions{Seed: seed}})
	case "gnat":
		return mvptree.NewGNAT(items, dist, mvptree.GNATOptions{LeafCapacity: k, Build: mvptree.BuildOptions{Seed: seed}})
	case "ball":
		return mvptree.NewBall(items, dist, mvptree.BallOptions{LeafCapacity: k, Build: mvptree.BuildOptions{Seed: seed}})
	case "bk":
		return mvptree.NewBK(items, dist)
	case "laesa":
		return mvptree.NewPivotTable(items, dist, mvptree.PivotOptions{Pivots: p, Build: mvptree.BuildOptions{Seed: seed}})
	case "linear":
		return mvptree.NewLinear(items, dist), nil
	default:
		return nil, fmt.Errorf("unknown index %q", id)
	}
}

// queryResult is the JSON form of one answered query.
type queryResult struct {
	Query                string       `json:"query"`
	Kind                 string       `json:"kind"` // "range" or "knn"
	Radius               float64      `json:"r,omitempty"`
	K                    int          `json:"k,omitempty"`
	Results              []jsonResult `json:"results"`
	DistanceComputations int64        `json:"distanceComputations"`
	// Search is the per-query filtering breakdown, present with -stats.
	Search *mvptree.SearchStats `json:"searchStats,omitempty"`
}

type jsonResult struct {
	Item string  `json:"item"`
	Dist float64 `json:"dist"`
}

func serve[T any](out io.Writer, in io.Reader, idx counted[T], parse func(string) (T, error), format func(T) string,
	queryStr string, r float64, k, maxShow int, jsonOut, stats bool) error {

	var si mvptree.StatsIndex[T]
	if stats {
		var ok bool
		si, ok = idx.(mvptree.StatsIndex[T])
		if !ok {
			return fmt.Errorf("this index does not expose per-query stats")
		}
	}

	build := idx.Counter().Count()
	if !jsonOut {
		fmt.Fprintf(out, "indexed %d items with %d distance computations\n", idx.Len(), build)
	}

	printStats := func(s mvptree.SearchStats) {
		fmt.Fprintf(out, "  stats: nodes=%d leaves=%d shells-pruned=%d candidates=%d filtered-d=%d filtered-path=%d computed=%d vantage=%d\n",
			s.NodesVisited, s.LeavesVisited, s.ShellsPruned, s.Candidates,
			s.FilteredByD, s.FilteredByPath, s.Computed, s.VantagePoints)
	}

	enc := json.NewEncoder(out)
	answer := func(line string) error {
		q, err := parse(strings.TrimSpace(line))
		if err != nil {
			return err
		}
		before := idx.Counter().Count()
		if jsonOut {
			res := queryResult{Query: strings.TrimSpace(line)}
			if r >= 0 {
				res.Kind, res.Radius = "range", r
				var items []T
				if stats {
					var s mvptree.SearchStats
					items, s = si.RangeWithStats(q, r)
					res.Search = &s
				} else {
					items = idx.Range(q, r)
				}
				for _, item := range items {
					res.Results = append(res.Results, jsonResult{format(item), 0})
				}
			} else {
				res.Kind, res.K = "knn", k
				var nbs []mvptree.Neighbor[T]
				if stats {
					var s mvptree.SearchStats
					nbs, s = si.KNNWithStats(q, k)
					res.Search = &s
				} else {
					nbs = idx.KNN(q, k)
				}
				for _, nb := range nbs {
					res.Results = append(res.Results, jsonResult{format(nb.Item), nb.Dist})
				}
			}
			res.DistanceComputations = idx.Counter().Count() - before
			return enc.Encode(res)
		}
		if r >= 0 {
			var results []T
			var s mvptree.SearchStats
			if stats {
				results, s = si.RangeWithStats(q, r)
			} else {
				results = idx.Range(q, r)
			}
			cost := idx.Counter().Count() - before
			fmt.Fprintf(out, "range r=%g: %d results, %d distance computations\n", r, len(results), cost)
			if stats {
				printStats(s)
			}
			for i, item := range results {
				if i >= maxShow {
					fmt.Fprintf(out, "  ... %d more\n", len(results)-maxShow)
					break
				}
				fmt.Fprintf(out, "  %s\n", format(item))
			}
			return nil
		}
		var results []mvptree.Neighbor[T]
		var s mvptree.SearchStats
		if stats {
			results, s = si.KNNWithStats(q, k)
		} else {
			results = idx.KNN(q, k)
		}
		cost := idx.Counter().Count() - before
		fmt.Fprintf(out, "knn k=%d: %d distance computations\n", k, cost)
		if stats {
			printStats(s)
		}
		for i, nb := range results {
			if i >= maxShow {
				break
			}
			fmt.Fprintf(out, "  d=%-10.4g %s\n", nb.Dist, format(nb.Item))
		}
		return nil
	}

	if queryStr != "" {
		return answer(queryStr)
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		if err := answer(sc.Text()); err != nil {
			fmt.Fprintln(os.Stderr, "query error:", err)
		}
	}
	return sc.Err()
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		s := strings.TrimSpace(sc.Text())
		if s != "" {
			out = append(out, s)
		}
	}
	return out, sc.Err()
}
