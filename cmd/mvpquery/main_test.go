package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const vecData = "0 0\n1 0\n0 1\n3 4\n10 10\n"

func TestVectorRangeQuery(t *testing.T) {
	data := writeTemp(t, "v.txt", vecData)
	for _, idx := range []string{"mvp", "vp", "gh", "gnat", "laesa", "linear"} {
		var sb strings.Builder
		err := run(&sb, strings.NewReader(""), []string{
			"-data", data, "-index", idx, "-range", "1.5", "-query", "0 0", "-k", "2", "-p", "2",
		})
		if err != nil {
			t.Fatalf("%s: %v", idx, err)
		}
		out := sb.String()
		if !strings.Contains(out, "3 results") {
			t.Errorf("%s: expected 3 results within 1.5 of origin:\n%s", idx, out)
		}
	}
}

func TestVectorKNNQuery(t *testing.T) {
	data := writeTemp(t, "v.txt", vecData)
	var sb strings.Builder
	err := run(&sb, strings.NewReader(""), []string{
		"-data", data, "-index", "mvp", "-knn", "2", "-query", "9 9", "-k", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "10 10") {
		t.Errorf("nearest neighbor of (9,9) missing:\n%s", sb.String())
	}
}

func TestEditDistanceBKQuery(t *testing.T) {
	data := writeTemp(t, "w.txt", "hello\nhallo\nworld\nhelp\n")
	var sb strings.Builder
	err := run(&sb, strings.NewReader(""), []string{
		"-data", data, "-metric", "edit", "-index", "bk", "-range", "1", "-query", "hello",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2 results") {
		t.Errorf("expected hello+hallo:\n%s", sb.String())
	}
}

func TestQueriesFromStdin(t *testing.T) {
	data := writeTemp(t, "v.txt", vecData)
	var sb strings.Builder
	err := run(&sb, strings.NewReader("0 0\n\n10 10\n"), []string{
		"-data", data, "-range", "0.5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "range r=0.5"); got != 2 {
		t.Errorf("answered %d stdin queries, want 2:\n%s", got, sb.String())
	}
}

func TestArgumentValidation(t *testing.T) {
	data := writeTemp(t, "v.txt", vecData)
	cases := [][]string{
		{"-range", "1"}, // missing -data
		{"-data", data}, // neither -range nor -knn
		{"-data", data, "-range", "1", "-knn", "2"},         // both
		{"-data", data, "-range", "1", "-metric", "cosine"}, // unknown metric
		{"-data", data, "-range", "1", "-index", "rtree"},   // unknown index
		{"-data", "/does/not/exist", "-range", "1"},         // missing file
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(&sb, strings.NewReader(""), append(args, "-query", "0 0")); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestDimensionMismatchReported(t *testing.T) {
	data := writeTemp(t, "v.txt", vecData)
	var sb strings.Builder
	err := run(&sb, strings.NewReader(""), []string{
		"-data", data, "-range", "1", "-query", "1 2 3",
	})
	if err == nil || !strings.Contains(err.Error(), "coordinates") {
		t.Errorf("dimension mismatch not reported: %v", err)
	}
}

func TestSaveAndLoadIndex(t *testing.T) {
	data := writeTemp(t, "v.txt", vecData)
	idxPath := filepath.Join(t.TempDir(), "idx.mvpt")

	var sb strings.Builder
	err := run(&sb, strings.NewReader(""), []string{
		"-data", data, "-index", "mvp", "-k", "2", "-saveindex", idxPath,
		"-range", "1.5", "-query", "0 0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3 results") {
		t.Fatalf("save run output:\n%s", sb.String())
	}

	sb.Reset()
	err = run(&sb, strings.NewReader(""), []string{
		"-loadindex", idxPath, "-index", "mvp", "-range", "1.5", "-query", "0 0",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "indexed 5 items with 0 distance computations") {
		t.Errorf("loading recomputed distances:\n%s", out)
	}
	if !strings.Contains(out, "3 results") {
		t.Errorf("loaded index answers differ:\n%s", out)
	}
}

func TestSaveLoadVPIndexStrings(t *testing.T) {
	data := writeTemp(t, "w.txt", "hello\nhallo\nworld\nhelp\n")
	idxPath := filepath.Join(t.TempDir(), "idx.vpt")
	var sb strings.Builder
	err := run(&sb, strings.NewReader(""), []string{
		"-data", data, "-metric", "edit", "-index", "vp",
		"-saveindex", idxPath, "-range", "1", "-query", "hello",
	})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	err = run(&sb, strings.NewReader(""), []string{
		"-loadindex", idxPath, "-metric", "edit", "-index", "vp",
		"-range", "1", "-query", "hello",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2 results") {
		t.Errorf("loaded vp index:\n%s", sb.String())
	}
}

func TestPersistenceFlagValidation(t *testing.T) {
	data := writeTemp(t, "v.txt", vecData)
	cases := [][]string{
		{"-data", data, "-saveindex", "/tmp/x", "-loadindex", "/tmp/x", "-range", "1", "-query", "0 0"},
		{"-data", data, "-index", "linear", "-saveindex", filepath.Join(t.TempDir(), "x"), "-range", "1", "-query", "0 0"},
		{"-loadindex", "/does/not/exist", "-range", "1", "-query", "0 0"},
		{"-loadindex", data, "-index", "gnat", "-range", "1", "-query", "0 0"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(&sb, strings.NewReader(""), args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestGMVPIndex(t *testing.T) {
	data := writeTemp(t, "v.txt", vecData)
	var sb strings.Builder
	err := run(&sb, strings.NewReader(""), []string{
		"-data", data, "-index", "gmvp", "-v", "3", "-m", "2", "-k", "2",
		"-range", "1.5", "-query", "0 0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3 results") {
		t.Errorf("gmvp index:\n%s", sb.String())
	}
}

func TestJSONOutput(t *testing.T) {
	data := writeTemp(t, "v.txt", vecData)
	var sb strings.Builder
	err := run(&sb, strings.NewReader(""), []string{
		"-data", data, "-json", "-range", "1.5", "-query", "0 0", "-k", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Query   string `json:"query"`
		Kind    string `json:"kind"`
		R       float64
		Results []struct {
			Item string  `json:"item"`
			Dist float64 `json:"dist"`
		} `json:"results"`
		DistanceComputations int64 `json:"distanceComputations"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if res.Kind != "range" || len(res.Results) != 3 || res.DistanceComputations <= 0 {
		t.Errorf("JSON result: %+v", res)
	}

	sb.Reset()
	err = run(&sb, strings.NewReader(""), []string{
		"-data", data, "-json", "-knn", "2", "-query", "9 9", "-k", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if res.Kind != "knn" || len(res.Results) != 2 || res.Results[0].Item != "10 10" {
		t.Errorf("knn JSON result: %+v", res)
	}
}
