package main

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mvptree/internal/dataset"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/serve"
)

func TestSummarize(t *testing.T) {
	if s := summarize(nil); s.Count != 0 || s.P99Ms != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond
	}
	rand.New(rand.NewPCG(1, 2)).Shuffle(len(lat), func(i, j int) { lat[i], lat[j] = lat[j], lat[i] })
	s := summarize(lat)
	if s.Count != 100 || s.P50Ms != 50 || s.P90Ms != 90 || s.P99Ms != 99 || s.MaxMs != 100 {
		t.Fatalf("summary: %+v", s)
	}
}

func TestLoadAgainstLiveServer(t *testing.T) {
	const dim = 8
	rng := rand.New(rand.NewPCG(11, 0))
	items := dataset.UniformVectors(rng, 1000, dim)
	tree, err := mvp.New(items, metric.NewCounter(metric.L2), mvp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New[[]float64](tree, serve.VectorCodec(dim), serve.Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	outFile := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var buf bytes.Buffer
	err = run(&buf, []string{
		"-addr", ts.URL,
		"-rate", "400", "-duration", "500ms",
		"-dim", "8", "-r", "0.6", "-k", "3", "-knnfrac", "0.5",
		"-out", outFile,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v\n%s", err, raw)
	}
	if rep.Sent == 0 || rep.OK == 0 {
		t.Fatalf("no traffic recorded: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors against a healthy server: %+v", rep.Errors, rep)
	}
	if rep.OK+rep.Rejected+rep.Shed != rep.Sent {
		t.Fatalf("accounting mismatch: ok %d + rejected %d + shed %d != sent %d",
			rep.OK, rep.Rejected, rep.Shed, rep.Sent)
	}
	if rep.Latency.Count != rep.OK || rep.Latency.P99Ms < rep.Latency.P50Ms {
		t.Fatalf("latency summary inconsistent: %+v", rep.Latency)
	}
	if rep.RangeLatency.Count+rep.KNNLatency.Count != rep.Latency.Count {
		t.Fatalf("per-endpoint counts don't add up: %+v", rep)
	}
	if !bytes.Equal(bytes.TrimSpace(buf.Bytes()), bytes.TrimSpace(raw)) {
		t.Fatal("stdout report differs from -out file")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"-rate", "0"}); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if err := run(&bytes.Buffer{}, []string{"-duration", "-1s"}); err == nil {
		t.Fatal("negative duration accepted")
	}
}
