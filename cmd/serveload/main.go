// Command serveload is an open-loop load generator for mvpserve: it
// fires range/kNN queries at a Poisson arrival rate — arrivals are
// scheduled on an absolute clock, independent of response times, so a
// slow server cannot slow the offered load down and hide its own
// latency (no coordinated omission) — and reports latency percentiles
// measured from each request's *scheduled* arrival time.
//
// Usage:
//
//	serveload -addr 127.0.0.1:8080 -rate 500 -duration 10s -dim 20 \
//	          -r 0.4 -k 5 -knnfrac 0.3 -out BENCH_serve.json
//
// The report counts 503 rejections (the server's bounded-admission
// backpressure) separately from transport errors: a loaded server that
// sheds cleanly shows rejected > 0 with errors == 0 and tight
// percentiles for what it did admit.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mvptree/internal/dataset"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
}

// sample is one completed request.
type sample struct {
	latency time.Duration
	status  int
	err     bool
	knn     bool
}

// LatencySummary is the percentile block of the report, in
// milliseconds.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) time.Duration {
		i := int(math.Ceil(p*float64(len(lat)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	return LatencySummary{
		Count:  int64(len(lat)),
		MeanMs: ms(sum / time.Duration(len(lat))),
		P50Ms:  ms(pct(0.50)),
		P90Ms:  ms(pct(0.90)),
		P99Ms:  ms(pct(0.99)),
		MaxMs:  ms(lat[len(lat)-1]),
	}
}

// Report is the BENCH_serve.json schema.
type Report struct {
	Target      string  `json:"target"`
	OfferedRPS  float64 `json:"offered_rps"`
	DurationSec float64 `json:"duration_sec"`
	Dim         int     `json:"dim"`
	Radius      float64 `json:"radius"`
	K           int     `json:"k"`
	KNNFrac     float64 `json:"knn_frac"`

	Sent        int64   `json:"sent"`
	OK          int64   `json:"ok"`
	Rejected    int64   `json:"rejected_503"`
	Errors      int64   `json:"errors"`
	Shed        int64   `json:"shed_client_side"`
	AchievedRPS float64 `json:"achieved_rps"`

	Latency      LatencySummary `json:"latency"`
	RangeLatency LatencySummary `json:"range_latency"`
	KNNLatency   LatencySummary `json:"knn_latency"`
}

func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("serveload", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "mvpserve address (host:port or http:// URL)")
		rate        = fs.Float64("rate", 500, "offered load: mean arrivals per second (Poisson)")
		duration    = fs.Duration("duration", 10*time.Second, "test length")
		dim         = fs.Int("dim", 20, "query vector dimensionality")
		radius      = fs.Float64("r", 0.4, "range query radius")
		k           = fs.Int("k", 5, "kNN neighbor count")
		knnFrac     = fs.Float64("knnfrac", 0.3, "fraction of arrivals issued as kNN queries")
		epsilon     = fs.Float64("epsilon", 0, "approximation slack ε sent with every query (0 = exact)")
		budget      = fs.Int64("budget", 0, "per-query distance budget sent with every query (0 = unlimited)")
		seed        = fs.Uint64("seed", 7, "query-stream seed")
		timeout     = fs.Duration("timeout", 5*time.Second, "per-request timeout")
		maxInFlight = fs.Int("maxinflight", 4096, "client-side cap on concurrent requests; arrivals beyond it are shed and counted")
		outFile     = fs.String("out", "", "write the JSON report to this file as well as stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rate <= 0 || *duration <= 0 {
		return fmt.Errorf("-rate and -duration must be positive")
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *maxInFlight,
			MaxIdleConnsPerHost: *maxInFlight,
		},
	}

	rng := rand.New(rand.NewPCG(*seed, 0))
	// Pre-generate a query pool and pre-marshal the bodies: the hot
	// loop should schedule and fire, not allocate.
	const poolSize = 256
	pool := dataset.UniformVectors(rng, poolSize, *dim)
	rangeBodies := make([][]byte, poolSize)
	knnBodies := make([][]byte, poolSize)
	for i, q := range pool {
		rangeBody := map[string]any{"query": q, "r": *radius}
		knnBody := map[string]any{"query": q, "k": *k}
		if *epsilon > 0 {
			rangeBody["epsilon"], knnBody["epsilon"] = *epsilon, *epsilon
		}
		if *budget > 0 {
			rangeBody["budget"], knnBody["budget"] = *budget, *budget
		}
		rb, err := json.Marshal(rangeBody)
		if err != nil {
			return err
		}
		kb, err := json.Marshal(knnBody)
		if err != nil {
			return err
		}
		rangeBodies[i], knnBodies[i] = rb, kb
	}

	var (
		wg       sync.WaitGroup
		inFlight atomic.Int64
		sent     int64
		shed     int64
	)
	samples := make(chan sample, 65536)

	fire := func(scheduled time.Time, i int, knn bool) {
		defer wg.Done()
		defer inFlight.Add(-1)
		url, body := base+"/range", rangeBodies[i]
		if knn {
			url, body = base+"/knn", knnBodies[i]
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		s := sample{latency: time.Since(scheduled), knn: knn}
		if err != nil {
			s.err = true
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			s.status = resp.StatusCode
		}
		samples <- s
	}

	// Open loop: the i-th arrival happens at start + Σ exponential
	// gaps, slept-to on the absolute clock.
	start := time.Now()
	deadline := start.Add(*duration)
	next := start
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / *rate * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		sent++
		if inFlight.Load() >= int64(*maxInFlight) {
			shed++
			continue
		}
		inFlight.Add(1)
		wg.Add(1)
		go fire(next, int(rng.Uint64N(poolSize)), rng.Float64() < *knnFrac)
	}
	go func() {
		wg.Wait()
		close(samples)
	}()

	rep := Report{
		Target:      base,
		OfferedRPS:  *rate,
		DurationSec: duration.Seconds(),
		Dim:         *dim,
		Radius:      *radius,
		K:           *k,
		KNNFrac:     *knnFrac,
		Sent:        sent,
		Shed:        shed,
	}
	var all, rangeLat, knnLat []time.Duration
	for s := range samples {
		switch {
		case s.err:
			rep.Errors++
		case s.status == http.StatusOK:
			rep.OK++
			all = append(all, s.latency)
			if s.knn {
				knnLat = append(knnLat, s.latency)
			} else {
				rangeLat = append(rangeLat, s.latency)
			}
		case s.status == http.StatusServiceUnavailable:
			rep.Rejected++
		default:
			rep.Errors++
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		rep.AchievedRPS = float64(rep.OK) / elapsed
	}
	rep.Latency = summarize(all)
	rep.RangeLatency = summarize(rangeLat)
	rep.KNNLatency = summarize(knnLat)

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if _, err := out.Write(raw); err != nil {
		return err
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, raw, 0o644); err != nil {
			return err
		}
	}
	return nil
}
