package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A tiny run of each experiment family through the real CLI path.
	for _, id := range []string{"fig4", "fig8", "claims", "words", "ablation-v"} {
		var sb strings.Builder
		err := run(&sb, []string{
			"-experiment", id, "-quick",
			"-n", "800", "-queries", "5", "-seeds", "1", "-pairs", "20000",
			"-imgcount", "60", "-imgdim", "16",
		})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := sb.String()
		if !strings.Contains(out, "== ") || !strings.Contains(out, "completed in") {
			t.Errorf("%s: output missing frame:\n%s", id, out)
		}
		if id == "fig8" && !strings.Contains(out, "mvpt(3,80)") {
			t.Errorf("fig8 output missing structure column:\n%s", out)
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-experiment", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-bogus"}); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestDescribeCoversAllIDs(t *testing.T) {
	ids := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"claims", "ablation-p", "ablation-k", "ablation-sv2", "ablation-v",
		"knn", "structures", "words", "build", "approx", "filters",
		"telemetry", "querybench"}
	for _, id := range ids {
		if describe(id) == id {
			t.Errorf("describe(%q) has no description", id)
		}
	}
}

func TestQueryBenchJSONArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_query.json")
	var sb strings.Builder
	// -queryjson alone must add the querybench experiment to the run.
	err := run(&sb, []string{
		"-experiment", "fig4", "-quick",
		"-n", "500", "-queries", "4", "-seeds", "1", "-pairs", "5000",
		"-queryjson", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "serving hot-path cost") {
		t.Errorf("-queryjson did not add the querybench experiment:\n%s", sb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		N    int `json:"n"`
		Rows []struct {
			Structure        string  `json:"structure"`
			RangeNsPerOp     float64 `json:"range_ns_per_op"`
			RangeAllocsPerOp float64 `json:"range_allocs_per_op"`
			KNNDistPerQuery  float64 `json:"knn_dist_per_query"`
		} `json:"structures"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.N != 500 || len(art.Rows) == 0 {
		t.Fatalf("artifact shape: n=%d rows=%d", art.N, len(art.Rows))
	}
	for _, r := range art.Rows {
		if r.Structure == "" || r.RangeNsPerOp <= 0 || r.KNNDistPerQuery <= 0 {
			t.Errorf("implausible row: %+v", r)
		}
		// The absolute zero-alloc guarantees are pinned by AllocsPerRun
		// tests in internal/mvp and internal/vptree; here only require
		// that mvpt range allocations stay in result-slice territory
		// rather than per-node-traversal territory.
		if r.Structure == "mvpt(3,80)" && r.RangeAllocsPerOp > 8 {
			t.Errorf("mvpt range allocs/op = %v, want near-zero steady-state serving", r.RangeAllocsPerOp)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, []string{
		"-experiment", "fig8", "-csv", "-quick",
		"-n", "500", "-queries", "3", "-seeds", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "r,") {
		t.Errorf("CSV output missing header:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Errorf("CSV output contains human framing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 5 radii
		t.Errorf("CSV has %d lines:\n%s", len(lines), out)
	}
	sb.Reset()
	if err := run(&sb, []string{"-experiment", "fig4", "-csv", "-quick", "-n", "300", "-pairs", "5000"}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "bucket,count\n") {
		t.Errorf("histogram CSV:\n%s", sb.String())
	}
}

// TestWorkersFlagPreservesCounts runs the same seeded experiment with
// -workers 1 and -workers 8 and requires byte-identical CSV tables:
// query parallelism must never change the reported distance counts.
func TestWorkersFlagPreservesCounts(t *testing.T) {
	runCSV := func(workers string) string {
		var sb strings.Builder
		err := run(&sb, []string{
			"-experiment", "fig8", "-csv", "-quick",
			"-n", "600", "-queries", "4", "-seeds", "2",
			"-workers", workers,
		})
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		return sb.String()
	}
	seq := runCSV("1")
	par := runCSV("8")
	if seq != par {
		t.Errorf("-workers changed the measured distance counts:\nworkers=1:\n%s\nworkers=8:\n%s", seq, par)
	}
}
