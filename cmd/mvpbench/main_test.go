package main

import (
	"strings"
	"testing"
)

func TestRunQuickExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A tiny run of each experiment family through the real CLI path.
	for _, id := range []string{"fig4", "fig8", "claims", "words", "ablation-v"} {
		var sb strings.Builder
		err := run(&sb, []string{
			"-experiment", id, "-quick",
			"-n", "800", "-queries", "5", "-seeds", "1", "-pairs", "20000",
			"-imgcount", "60", "-imgdim", "16",
		})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := sb.String()
		if !strings.Contains(out, "== ") || !strings.Contains(out, "completed in") {
			t.Errorf("%s: output missing frame:\n%s", id, out)
		}
		if id == "fig8" && !strings.Contains(out, "mvpt(3,80)") {
			t.Errorf("fig8 output missing structure column:\n%s", out)
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-experiment", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-bogus"}); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestDescribeCoversAllIDs(t *testing.T) {
	ids := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"claims", "ablation-p", "ablation-k", "ablation-sv2", "ablation-v",
		"knn", "structures", "words", "build", "approx", "filters"}
	for _, id := range ids {
		if describe(id) == id {
			t.Errorf("describe(%q) has no description", id)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, []string{
		"-experiment", "fig8", "-csv", "-quick",
		"-n", "500", "-queries", "3", "-seeds", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "r,") {
		t.Errorf("CSV output missing header:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Errorf("CSV output contains human framing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 5 radii
		t.Errorf("CSV has %d lines:\n%s", len(lines), out)
	}
	sb.Reset()
	if err := run(&sb, []string{"-experiment", "fig4", "-csv", "-quick", "-n", "300", "-pairs", "5000"}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "bucket,count\n") {
		t.Errorf("histogram CSV:\n%s", sb.String())
	}
}

// TestWorkersFlagPreservesCounts runs the same seeded experiment with
// -workers 1 and -workers 8 and requires byte-identical CSV tables:
// query parallelism must never change the reported distance counts.
func TestWorkersFlagPreservesCounts(t *testing.T) {
	runCSV := func(workers string) string {
		var sb strings.Builder
		err := run(&sb, []string{
			"-experiment", "fig8", "-csv", "-quick",
			"-n", "600", "-queries", "4", "-seeds", "2",
			"-workers", workers,
		})
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		return sb.String()
	}
	seq := runCSV("1")
	par := runCSV("8")
	if seq != par {
		t.Errorf("-workers changed the measured distance counts:\nworkers=1:\n%s\nworkers=8:\n%s", seq, par)
	}
}
