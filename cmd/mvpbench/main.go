// Command mvpbench regenerates every table and figure of the paper's
// evaluation (Figures 4–11), the headline claims, and this repository's
// ablation and extension studies. Output is textual: histograms as
// "bucket count" rows, search experiments as one row per query range
// with one column per structure (average number of distance computations
// per query, the paper's cost measure).
//
// Usage:
//
//	mvpbench -experiment fig8            # paper scale (50,000 vectors)
//	mvpbench -experiment all -quick      # everything, reduced scale
//	mvpbench -experiment fig10 -imgdim 256 -imgcount 1151
//
// Experiments: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 claims
// ablation-p ablation-k ablation-sv2 ablation-v knn structures words
// build approx filters telemetry querybench shardbench cascadebench
// approxbench all.
//
// -obsjson FILE writes the telemetry experiment's per-structure
// observer snapshots (latency and distance-count histograms, filter
// counters) as a JSON artifact; -queryjson FILE writes the querybench
// experiment's per-structure serving costs (ns/op, distances/query,
// allocs/op); -shardjson FILE writes the shardbench experiment's
// sharded-serving scaling report (-shards and -queryworkers set its
// sweeps); -cascadejson FILE writes the cascadebench experiment's
// cascade-off vs cascade-on distance-count deltas; -approxjson FILE
// writes the approxbench experiment's recall-vs-distance-cost curves;
// -quantjson FILE writes the quantbench experiment's quantized
// pre-filter wall-time and survivor-rate report;
// -cpuprofile/-memprofile write pprof profiles of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mvptree/internal/bench"
	"mvptree/internal/dataset"
	"mvptree/internal/experiments"
	"mvptree/internal/histogram"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mvpbench:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("mvpbench", flag.ContinueOnError)
	var (
		experiment   = fs.String("experiment", "all", "experiment id (see package comment) or 'all'")
		quick        = fs.Bool("quick", false, "reduced scale: 5,000 vectors, 200 images")
		n            = fs.Int("n", 0, "override vector dataset size")
		dim          = fs.Int("dim", 0, "override vector dimensionality")
		queries      = fs.Int("queries", 0, "override query count per run")
		seeds        = fs.Int("seeds", 0, "override number of construction seeds")
		imgCount     = fs.Int("imgcount", 0, "override image dataset size")
		imgDim       = fs.Int("imgdim", 0, "override image side length")
		imgDir       = fs.String("imgdir", "", "directory of PGM images to use instead of the synthetic collection")
		pairs        = fs.Int("pairs", 0, "override sampled pairs for fig4/fig5")
		dataSeed     = fs.Uint64("dataseed", 0, "override workload generation seed")
		workers      = fs.Int("workers", 1, "query-evaluation goroutines per run (distance counts are identical for any value)")
		buildWorkers = fs.Int("buildworkers", 1, "construction goroutines per index build (the index built, and its distance count, are identical for any value)")
		buildJSON    = fs.String("buildjson", "", "write the build experiment's per-structure stats as JSON to this file (adds the build experiment if not selected)")
		obsJSON      = fs.String("obsjson", "", "write the telemetry experiment's per-structure observer snapshots as JSON to this file (adds the telemetry experiment if not selected)")
		queryJSON    = fs.String("queryjson", "", "write the querybench experiment's per-structure serving costs (ns/op, distances/query, allocs/op) as JSON to this file (adds the querybench experiment if not selected)")
		shards       = fs.String("shards", "", "comma-separated shard counts for the shardbench experiment (default 1,2,4,8)")
		queryWorkers = fs.String("queryworkers", "", "comma-separated intra-query fan-out worker counts for the shardbench experiment (default 1,2,4,8)")
		shardJSON    = fs.String("shardjson", "", "write the shardbench experiment's scaling report as JSON to this file (adds the shardbench experiment if not selected)")
		cascadeJSON  = fs.String("cascadejson", "", "write the cascadebench experiment's distance-count report as JSON to this file (adds the cascadebench experiment if not selected)")
		approxJSON   = fs.String("approxjson", "", "write the approxbench experiment's recall-vs-cost report as JSON to this file (adds the approxbench experiment if not selected)")
		quantJSON    = fs.String("quantjson", "", "write the quantbench experiment's quantized pre-filter wall-time report as JSON to this file (adds the quantbench experiment if not selected)")
		batchJSON    = fs.String("batchjson", "", "write the batchbench experiment's shared-traversal batching report as JSON to this file (adds the batchbench experiment if not selected)")
		cpuProfile   = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProfile   = fs.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
		csv          = fs.Bool("csv", false, "emit tables and histograms as CSV")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mvpbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mvpbench: memprofile:", err)
			}
		}()
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *dim > 0 {
		cfg.Dim = *dim
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *seeds > 0 {
		cfg.TreeSeeds = cfg.TreeSeeds[:0]
		for i := 0; i < *seeds; i++ {
			cfg.TreeSeeds = append(cfg.TreeSeeds, uint64(101*(i+1)))
		}
	}
	if *imgCount > 0 {
		cfg.ImageCount = *imgCount
	}
	if *imgDim > 0 {
		cfg.ImageDim = *imgDim
	}
	if *pairs > 0 {
		cfg.HistPairs = *pairs
	}
	if *dataSeed > 0 {
		cfg.DataSeed = *dataSeed
	}
	if *workers > 1 {
		cfg.QueryWorkers = *workers
	}
	if *shards != "" {
		list, err := parseIntList(*shards)
		if err != nil {
			return fmt.Errorf("-shards: %w", err)
		}
		cfg.ShardCounts = list
	}
	if *queryWorkers != "" {
		list, err := parseIntList(*queryWorkers)
		if err != nil {
			return fmt.Errorf("-queryworkers: %w", err)
		}
		cfg.ShardQueryWorkers = list
	}
	if *buildWorkers > 1 {
		cfg.BuildWorkers = *buildWorkers
	}
	if *imgDir != "" {
		imgs, err := dataset.LoadPGMDir(*imgDir)
		if err != nil {
			return err
		}
		cfg.ImageSet = imgs
		cfg.ImageCount = len(imgs)
		cfg.ImageDim = imgs[0].Width
		fmt.Fprintf(out, "# using %d images of %dx%d from %s\n", len(imgs), imgs[0].Width, imgs[0].Height, *imgDir)
	}

	ids := strings.Split(*experiment, ",")
	if *experiment == "all" {
		ids = []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
			"claims", "ablation-p", "ablation-k", "ablation-sv2", "ablation-v",
			"knn", "structures", "words", "build", "approx", "filters", "telemetry", "querybench", "shardbench", "cascadebench", "approxbench", "quantbench", "batchbench"}
	}
	if *buildJSON != "" && !containsID(ids, "build") {
		ids = append(ids, "build")
	}
	if *obsJSON != "" && !containsID(ids, "telemetry") {
		ids = append(ids, "telemetry")
	}
	if *queryJSON != "" && !containsID(ids, "querybench") {
		ids = append(ids, "querybench")
	}
	if *shardJSON != "" && !containsID(ids, "shardbench") {
		ids = append(ids, "shardbench")
	}
	if *cascadeJSON != "" && !containsID(ids, "cascadebench") {
		ids = append(ids, "cascadebench")
	}
	if *approxJSON != "" && !containsID(ids, "approxbench") {
		ids = append(ids, "approxbench")
	}
	if *quantJSON != "" && !containsID(ids, "quantbench") {
		ids = append(ids, "quantbench")
	}
	if *batchJSON != "" && !containsID(ids, "batchbench") {
		ids = append(ids, "batchbench")
	}
	for _, id := range ids {
		if err := runOne(out, strings.TrimSpace(id), cfg, *csv, *buildJSON, *obsJSON, *queryJSON, *shardJSON, *cascadeJSON, *approxJSON, *quantJSON, *batchJSON); err != nil {
			return err
		}
	}
	return nil
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil || v < 1 {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func containsID(ids []string, want string) bool {
	for _, id := range ids {
		if strings.TrimSpace(id) == want {
			return true
		}
	}
	return false
}

// buildArtifact is the JSON document -buildjson writes: the per-structure
// construction stats of the build experiment plus the run configuration
// needed to interpret them.
type buildArtifact struct {
	N            int                 `json:"n"`
	Dim          int                 `json:"dim"`
	Seeds        int                 `json:"seeds"`
	BuildWorkers int                 `json:"build_workers"`
	Structures   []bench.BuildReport `json:"structures"`
}

func writeBuildJSON(path string, cfg experiments.Config, tbl *bench.Table) error {
	bw := cfg.BuildWorkers
	if bw < 1 {
		bw = 1
	}
	art := buildArtifact{
		N:            cfg.N,
		Dim:          cfg.Dim,
		Seeds:        len(cfg.TreeSeeds),
		BuildWorkers: bw,
		Structures:   tbl.BuildReports(),
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeObsJSON(path string, rep *experiments.TelemetryReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeQueryJSON(path string, rep *experiments.QueryBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeShardJSON(path string, rep *experiments.ShardBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeCascadeJSON(path string, rep *experiments.CascadeBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeApproxJSON(path string, rep *experiments.ApproxBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeQuantJSON(path string, rep *experiments.QuantBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeBatchJSON(path string, rep *experiments.BatchBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runOne(out io.Writer, id string, cfg experiments.Config, csv bool, buildJSON, obsJSON, queryJSON, shardJSON, cascadeJSON, approxJSON, quantJSON, batchJSON string) error {
	start := time.Now()
	if !csv {
		fmt.Fprintf(out, "== %s ==\n", describe(id))
	}
	pt := func(t *bench.Table, err error) error { return printTable(out, t, err, csv) }
	var err error
	switch id {
	case "fig4":
		err = printHistogram(out, experiments.Fig4(cfg), csv)
	case "fig5":
		err = printHistogram(out, experiments.Fig5(cfg), csv)
	case "fig6":
		err = printHistogram(out, experiments.Fig6(cfg), csv)
	case "fig7":
		err = printHistogram(out, experiments.Fig7(cfg), csv)
	case "fig8":
		err = pt(experiments.Fig8(cfg))
	case "fig9":
		err = pt(experiments.Fig9(cfg))
	case "fig10":
		err = pt(experiments.Fig10(cfg))
	case "fig11":
		err = pt(experiments.Fig11(cfg))
	case "claims":
		var claims []experiments.Claim
		claims, err = experiments.Claims(cfg)
		if err == nil {
			err = experiments.WriteClaims(out, claims)
		}
	case "ablation-p":
		err = pt(experiments.AblationP(cfg))
	case "ablation-k":
		err = pt(experiments.AblationK(cfg))
	case "ablation-sv2":
		err = pt(experiments.AblationSV2(cfg))
	case "ablation-v":
		err = pt(experiments.VantageStudy(cfg))
	case "knn":
		err = pt(experiments.KNNStudy(cfg))
	case "structures":
		err = pt(experiments.StructureStudy(cfg))
	case "words":
		err = pt(experiments.WordStudy(cfg))
	case "filters":
		var rows []experiments.FilterRow
		rows, err = experiments.FilterStudy(cfg)
		if err == nil {
			err = experiments.WriteFilterRows(out, rows)
		}
	case "approx":
		var results []experiments.ApproxResult
		results, err = experiments.ApproxStudy(cfg)
		if err == nil {
			err = experiments.WriteApproxResults(out, results)
		}
	case "build":
		var tbl *bench.Table
		tbl, err = experiments.BuildStudy(cfg)
		if err == nil {
			_, err = tbl.WriteBuildCosts(out)
		}
		if err == nil && buildJSON != "" {
			err = writeBuildJSON(buildJSON, cfg, tbl)
		}
	case "telemetry":
		var rep *experiments.TelemetryReport
		rep, err = experiments.TelemetryStudy(cfg)
		if err == nil {
			err = experiments.WriteTelemetry(out, rep)
		}
		if err == nil && obsJSON != "" {
			err = writeObsJSON(obsJSON, rep)
		}
	case "querybench":
		var rep *experiments.QueryBenchReport
		rep, err = experiments.QueryBenchStudy(cfg)
		if err == nil {
			err = experiments.WriteQueryBench(out, rep)
		}
		if err == nil && queryJSON != "" {
			err = writeQueryJSON(queryJSON, rep)
		}
	case "shardbench":
		var rep *experiments.ShardBenchReport
		rep, err = experiments.ShardBenchStudy(cfg)
		if err == nil {
			err = experiments.WriteShardBench(out, rep)
		}
		if err == nil && shardJSON != "" {
			err = writeShardJSON(shardJSON, rep)
		}
	case "cascadebench":
		var rep *experiments.CascadeBenchReport
		rep, err = experiments.CascadeBenchStudy(cfg)
		if err == nil {
			err = experiments.WriteCascadeBench(out, rep)
		}
		if err == nil && cascadeJSON != "" {
			err = writeCascadeJSON(cascadeJSON, rep)
		}
	case "approxbench":
		var rep *experiments.ApproxBenchReport
		rep, err = experiments.ApproxBenchStudy(cfg)
		if err == nil {
			err = experiments.WriteApproxBench(out, rep)
		}
		if err == nil && approxJSON != "" {
			err = writeApproxJSON(approxJSON, rep)
		}
	case "quantbench":
		var rep *experiments.QuantBenchReport
		rep, err = experiments.QuantBenchStudy(cfg)
		if err == nil {
			err = experiments.WriteQuantBench(out, rep)
		}
		if err == nil && quantJSON != "" {
			err = writeQuantJSON(quantJSON, rep)
		}
	case "batchbench":
		var rep *experiments.BatchBenchReport
		rep, err = experiments.BatchBenchStudy(cfg)
		if err == nil {
			err = experiments.WriteBatchBench(out, rep)
		}
		if err == nil && batchJSON != "" {
			err = writeBatchJSON(batchJSON, rep)
		}
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	if !csv {
		fmt.Fprintf(out, "# %s completed in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func describe(id string) string {
	descriptions := map[string]string{
		"fig4":         "Figure 4: distance distribution, uniform 20-d vectors (L2)",
		"fig5":         "Figure 5: distance distribution, clustered 20-d vectors (L2)",
		"fig6":         "Figure 6: distance distribution, gray images (normalized L1)",
		"fig7":         "Figure 7: distance distribution, gray images (normalized L2)",
		"fig8":         "Figure 8: distance computations per search, uniform vectors",
		"fig9":         "Figure 9: distance computations per search, clustered vectors",
		"fig10":        "Figure 10: distance computations per search, images (L1)",
		"fig11":        "Figure 11: distance computations per search, images (L2)",
		"claims":       "headline claims: mvp-tree savings over the best vp-tree",
		"ablation-p":   "ablation: retained PATH length p (Observation 2)",
		"ablation-k":   "ablation: leaf capacity k ('keep k large', §4.2)",
		"ablation-sv2": "ablation: farthest vs random second vantage point (§4.2)",
		"ablation-v":   "ablation: vantage points per node at fixed fanout (§4.2 remark)",
		"knn":          "extension: k-nearest-neighbor cost across structures",
		"structures":   "extension: §3.2 structures (gh-tree, GNAT, LAESA) vs vpt/mvpt",
		"words":        "extension: [BK73] word search under edit distance",
		"build":        "extension: construction cost across structures",
		"approx":       "extension: anytime kNN — recall vs distance-computation budget",
		"filters":      "extension: leaf-filter breakdown (Observations 1 & 2 measured)",
		"telemetry":    "extension: per-structure query telemetry (observer snapshots)",
		"querybench":   "extension: serving hot-path cost (ns/op, distances, allocs per query)",
		"shardbench":   "extension: sharded serving scaling (shards × intra-query workers)",
		"cascadebench": "extension: cross-query bound cascade, distance counts off vs on",
		"approxbench":  "extension: approximate & budgeted kNN — recall vs distance cost across dimensions",
		"quantbench":   "extension: quantized lower-bound pre-filter — wall time off vs sq8/f32",
		"batchbench":   "extension: shared-traversal batch execution — wall time per query vs batch size",
	}
	if d, ok := descriptions[id]; ok {
		return d
	}
	return id
}

func printHistogram(out io.Writer, h *histogram.Histogram, csv bool) error {
	if csv {
		_, err := h.WriteCSV(out)
		return err
	}
	_, err := h.WriteTo(out)
	return err
}

func printTable(out io.Writer, t *bench.Table, err error, csv bool) error {
	if err != nil {
		return err
	}
	if csv {
		_, err := t.WriteCSV(out)
		return err
	}
	if _, err := t.WriteTo(out); err != nil {
		return err
	}
	fmt.Fprintln(out, "# average result-set sizes (all structures must agree):")
	_, err = t.WriteResultCounts(out)
	return err
}
