package mvptree

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"testing"
	"time"
)

func obsTestData(n, dim int) ([][]float64, [][]float64) {
	rng := rand.New(rand.NewPCG(17, 29))
	items := make([][]float64, n)
	for i := range items {
		items[i] = randomVector(rng, dim)
	}
	queries := make([][]float64, 30)
	for i := range queries {
		queries[i] = randomVector(rng, dim)
	}
	return items, queries
}

func randomVector(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

// TestWithObserverAccountsAllDistances is the tentpole's exactness
// claim at the facade: with an Observer attached at construction, the
// snapshot's distance total equals the index's DistanceCount delta over
// the same queries — for a sequential loop and for every batch worker
// count.
func TestWithObserverAccountsAllDistances(t *testing.T) {
	items, queries := obsTestData(1500, 6)
	o := NewObserver(0)
	tree, err := New(items, L2, Options{Partitions: 2, LeafCapacity: 20, PathLength: 4}, WithObserver[[]float64](o))
	if err != nil {
		t.Fatal(err)
	}
	before := tree.DistanceCount()
	for _, q := range queries {
		tree.Range(q, 0.4)
		tree.KNN(q, 5)
	}
	delta := tree.DistanceCount() - before
	snap := o.Snapshot()
	if snap.Distances != delta {
		t.Fatalf("observer saw %d distances, counter moved %d", snap.Distances, delta)
	}
	if snap.Queries != int64(2*len(queries)) {
		t.Fatalf("observer saw %d queries, want %d", snap.Queries, 2*len(queries))
	}

	// Same exactness through the batch executor, observer on the
	// executor side, across worker counts.
	for _, workers := range []int{1, 4} {
		bo := NewObserver(workers)
		_, stats, _ := BatchRange(tree, queries, 0.4, BatchOptions{Workers: workers, Observer: bo})
		snap := bo.Snapshot()
		if snap.Distances != stats.Distances {
			t.Fatalf("workers=%d: observer saw %d distances, batch measured %d",
				workers, snap.Distances, stats.Distances)
		}
	}
}

// TestWithCounterOption checks that WithCounter routes construction
// cost into the caller's shared counter, deterministically: two
// identical builds over two fresh counters land on the same count.
func TestWithCounterOption(t *testing.T) {
	items, _ := obsTestData(400, 5)
	opts := Options{Partitions: 2, LeafCapacity: 10, PathLength: 2}

	c1 := NewCounter(L2)
	if _, err := New(items, nil, opts, WithCounter(c1)); err != nil {
		t.Fatal(err)
	}
	c2 := NewCounter(L2)
	if _, err := New(items, nil, opts, WithCounter(c2)); err != nil {
		t.Fatal(err)
	}
	if c1.Count() == 0 || c1.Count() != c2.Count() {
		t.Fatalf("build cost through first counter %d, second %d", c1.Count(), c2.Count())
	}
}

// TestWithTracerFacade checks the tracer option end to end on a vp-tree.
type eventCount struct {
	starts, dones, nodes, prunes, distances int
}

func (e *eventCount) OnQueryStart(QueryKind)                            { e.starts++ }
func (e *eventCount) OnNodeVisit(bool)                                  { e.nodes++ }
func (e *eventCount) OnFilterPrune(PruneFilter, int)                    { e.prunes++ }
func (e *eventCount) OnDistance(n int)                                  { e.distances += n }
func (e *eventCount) OnQueryDone(QueryKind, time.Duration, SearchStats) { e.dones++ }

func TestWithTracerFacade(t *testing.T) {
	items, queries := obsTestData(600, 5)
	var ev eventCount
	tree, err := NewVP(items, L2, VPOptions{Order: 3, LeafCapacity: 8}, WithTracer[[]float64](&ev))
	if err != nil {
		t.Fatal(err)
	}
	before := tree.DistanceCount()
	for _, q := range queries {
		tree.Range(q, 0.4)
	}
	delta := tree.DistanceCount() - before
	if ev.starts != len(queries) || ev.dones != len(queries) {
		t.Fatalf("tracer saw %d starts / %d dones, want %d each", ev.starts, ev.dones, len(queries))
	}
	if int64(ev.distances) != delta {
		t.Fatalf("tracer saw %d distances, counter moved %d", ev.distances, delta)
	}
	if ev.nodes == 0 {
		t.Fatal("tracer saw no node visits")
	}
}

// TestSnapshotJSONExport checks the JSON exporter produces a parseable
// document with the headline totals.
func TestSnapshotJSONExport(t *testing.T) {
	items, queries := obsTestData(500, 5)
	o := NewObserver(2)
	tree, err := New(items, L2, Options{Partitions: 2, LeafCapacity: 16, PathLength: 2}, WithObserver[[]float64](o))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		tree.KNN(q, 3)
	}
	var buf bytes.Buffer
	if err := WriteSnapshotJSON(&buf, o); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if doc["queries"].(float64) != float64(len(queries)) {
		t.Fatalf("exported queries = %v, want %d", doc["queries"], len(queries))
	}
}

// Compile-time checks: the facade structures all satisfy StatsIndex.
var (
	_ StatsIndex[[]float64] = (*Tree[[]float64])(nil)
	_ StatsIndex[[]float64] = (*GeneralTree[[]float64])(nil)
	_ StatsIndex[[]float64] = (*VPTree[[]float64])(nil)
	_ StatsIndex[[]float64] = (*GHTree[[]float64])(nil)
	_ StatsIndex[[]float64] = (*GNATree[[]float64])(nil)
	_ StatsIndex[string]    = (*BKTree[string])(nil)
	_ StatsIndex[[]float64] = (*BallTree[[]float64])(nil)
	_ StatsIndex[[]float64] = (*PivotTable[[]float64])(nil)
	_ StatsIndex[[]float64] = (*LinearScan[[]float64])(nil)
	_ StatsIndex[[]float64] = (*DynamicStore[[]float64])(nil)
)
