package mvptree

import (
	"io"
	"math/rand/v2"

	"mvptree/internal/dataset"
	"mvptree/internal/histogram"
	"mvptree/internal/metric"
	"mvptree/internal/pgm"
)

// Workload generators and analysis helpers, re-exported from the
// internal dataset and histogram packages. All generators are
// deterministic given their *rand.Rand.

// UniformVectors returns n vectors drawn uniformly from [0,1)^dim — the
// paper's uniform workload (§5.1.A).
func UniformVectors(rng *rand.Rand, n, dim int) [][]float64 {
	return dataset.UniformVectors(rng, n, dim)
}

// ClusteredVectors returns n vectors generated in perturbation-chain
// clusters of clusterSize with amplitude eps — the paper's clustered
// workload (§5.1.A).
func ClusteredVectors(rng *rand.Rand, n, dim, clusterSize int, eps float64) [][]float64 {
	return dataset.ClusteredVectors(rng, n, dim, clusterSize, eps)
}

// ImageOptions configure SyntheticImages.
type ImageOptions = dataset.ImageOptions

// SyntheticImages returns n gray-level phantom images with the bimodal
// pairwise-distance distribution of the paper's MRI workload (§5.1.B);
// see DESIGN.md for the substitution rationale.
func SyntheticImages(rng *rand.Rand, n int, opts ImageOptions) []*Image {
	return dataset.SyntheticImages(rng, n, opts)
}

// WordOptions configure Words.
type WordOptions = dataset.WordOptions

// Words returns a synthetic word corpus for edit-distance search.
func Words(rng *rand.Rand, n int, opts WordOptions) []string {
	return dataset.Words(rng, n, opts)
}

// SampleQueries draws q items from a dataset without replacement, the
// paper's image-query protocol.
func SampleQueries[T any](rng *rand.Rand, items []T, q int) []T {
	return dataset.SampleQueries(rng, items, q)
}

// Histogram is a fixed-bucket-width distance histogram (Figures 4–7).
type Histogram = histogram.Histogram

// NewHistogram returns an empty histogram with the given bucket width.
func NewHistogram(bucketWidth float64) *Histogram { return histogram.New(bucketWidth) }

// PairwiseHistogram records all unordered pairwise distances of items.
func PairwiseHistogram[T any](items []T, fn DistanceFunc[T], bucketWidth float64) *Histogram {
	return histogram.Pairwise(items, metric.DistanceFunc[T](fn), bucketWidth)
}

// SampledPairwiseHistogram records the distances of pairs sampled
// uniformly, for datasets with too many pairs to enumerate.
func SampledPairwiseHistogram[T any](rng *rand.Rand, items []T, fn DistanceFunc[T], bucketWidth float64, pairs int) *Histogram {
	return histogram.PairwiseSampled(rng, items, metric.DistanceFunc[T](fn), bucketWidth, pairs)
}

// EncodePGM writes an image as binary PGM (P5), the storage format of
// the paper's image collection.
func EncodePGM(w io.Writer, im *Image) error { return pgm.Encode(w, im) }

// DecodePGM reads a binary (P5) or ASCII (P2) PGM image.
func DecodePGM(r io.Reader) (*Image, error) { return pgm.Decode(r) }
