package mvptree

import (
	"io"

	"mvptree/internal/gmvp"
	"mvptree/internal/metric"
)

// GeneralTree is the generalized multi-vantage-point tree: any number v
// of vantage points per node, fanout mᵛ. It realizes the paper's §4.2
// remark that "more than 2 vantage points can be kept in one node";
// v = 2 coincides with Tree, v = 1 with a bucketed m-way vp-tree that
// retains PATH distances.
type GeneralTree[T any] = gmvp.Tree[T]

// GeneralOptions configure a GeneralTree: Vantages (v), Partitions (m),
// LeafCapacity and PathLength.
type GeneralOptions = gmvp.Options

// NewGeneral builds a generalized mvp-tree with a fresh internal
// Counter unless WithCounter overrides it.
func NewGeneral[T any](items []T, dist DistanceFunc[T], opts GeneralOptions, ixOpts ...IndexOption[T]) (*GeneralTree[T], error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, err := gmvp.New(items, cfg.counter, opts)
	if err != nil {
		return nil, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, err
	}
	return t, nil
}

// NewGeneralWithStats is NewGeneral plus the construction report.
func NewGeneralWithStats[T any](items []T, dist DistanceFunc[T], opts GeneralOptions, ixOpts ...IndexOption[T]) (*GeneralTree[T], BuildStats, error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	t, bs, err := gmvp.NewWithStats(items, cfg.counter, opts)
	if err != nil {
		return nil, bs, err
	}
	cfg.install(t)
	if err := cfg.enableCascade(t); err != nil {
		return nil, bs, err
	}
	return t, bs, nil
}

// SaveGeneralTree writes a generalized tree to w in the same
// CRC-protected envelope as SaveTree.
func SaveGeneralTree[T any](w io.Writer, t *GeneralTree[T], enc ItemEncoder[T]) error {
	return t.Save(w, gmvp.ItemEncoder[T](enc))
}

// LoadGeneralTree reads a tree written by SaveGeneralTree.
func LoadGeneralTree[T any](r io.Reader, dist DistanceFunc[T], dec ItemDecoder[T]) (*GeneralTree[T], error) {
	return gmvp.Load(r, metric.NewCounter(dist), gmvp.ItemDecoder[T](dec))
}
