package mvptree

import (
	"io"

	"mvptree/internal/bktree"
	"mvptree/internal/codec"
	"mvptree/internal/laesa"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/vptree"
)

// Persistence: a built tree is written to a stream and reloaded without
// recomputing any distances — the expensive part of construction on the
// metric domains this library targets. Items travel through an
// encoder/decoder pair; built-in pairs cover the paper's three item
// types. The metric itself is NOT serialized: Load must be given the
// same distance function the tree was built with, or query results will
// be silently wrong.

// ItemEncoder serializes one item for persistence.
type ItemEncoder[T any] = mvp.ItemEncoder[T]

// ItemDecoder deserializes one item.
type ItemDecoder[T any] = mvp.ItemDecoder[T]

// SaveTree writes an mvp-tree to w.
func SaveTree[T any](w io.Writer, t *Tree[T], enc ItemEncoder[T]) error {
	return t.Save(w, enc)
}

// LoadTree reads an mvp-tree written by SaveTree, measuring future
// queries through a fresh Counter over dist.
func LoadTree[T any](r io.Reader, dist DistanceFunc[T], dec ItemDecoder[T]) (*Tree[T], error) {
	return mvp.Load(r, metric.NewCounter(dist), mvp.ItemDecoder[T](dec))
}

// SaveVPTree writes a vp-tree to w.
func SaveVPTree[T any](w io.Writer, t *VPTree[T], enc ItemEncoder[T]) error {
	return t.Save(w, vptree.ItemEncoder[T](enc))
}

// LoadVPTree reads a vp-tree written by SaveVPTree.
func LoadVPTree[T any](r io.Reader, dist DistanceFunc[T], dec ItemDecoder[T]) (*VPTree[T], error) {
	return vptree.Load(r, metric.NewCounter(dist), vptree.ItemDecoder[T](dec))
}

// Built-in item codecs for the paper's domains.

// EncodeVector and DecodeVector persist float64 vectors.
func EncodeVector(v []float64) ([]byte, error) { return codec.EncodeVector(v) }
func DecodeVector(b []byte) ([]float64, error) { return codec.DecodeVector(b) }

// EncodeString and DecodeString persist strings.
func EncodeString(s string) ([]byte, error) { return codec.EncodeString(s) }
func DecodeString(b []byte) (string, error) { return codec.DecodeString(b) }

// EncodeImage and DecodeImage persist gray-level images (as binary PGM).
func EncodeImage(im *Image) ([]byte, error) { return codec.EncodeImage(im) }
func DecodeImage(b []byte) (*Image, error)  { return codec.DecodeImage(b) }

// SaveBKTree writes a BK-tree to w.
func SaveBKTree[T any](w io.Writer, t *BKTree[T], enc ItemEncoder[T]) error {
	return t.Save(w, bktree.ItemEncoder[T](enc))
}

// LoadBKTree reads a BK-tree written by SaveBKTree.
func LoadBKTree[T any](r io.Reader, dist DistanceFunc[T], dec ItemDecoder[T]) (*BKTree[T], error) {
	return bktree.Load(r, metric.NewCounter(dist), bktree.ItemDecoder[T](dec))
}

// SavePivotTable writes a pivot table to w. Reloading avoids the
// pivots × n distance computations of construction.
func SavePivotTable[T any](w io.Writer, t *PivotTable[T], enc ItemEncoder[T]) error {
	return t.Save(w, laesa.ItemEncoder[T](enc))
}

// LoadPivotTable reads a pivot table written by SavePivotTable.
func LoadPivotTable[T any](r io.Reader, dist DistanceFunc[T], dec ItemDecoder[T]) (*PivotTable[T], error) {
	return laesa.Load(r, metric.NewCounter(dist), laesa.ItemDecoder[T](dec))
}
