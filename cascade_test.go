package mvptree

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"mvptree/internal/dataset"
)

// The cross-structure invariance table: every structure supporting
// WithCascade, on every workload class of the paper's evaluation plus
// the [BK73] word corpus, must answer byte-identically with the cascade
// on and off while never spending more distance computations. This is
// the facade-level twin of the per-package cascade tests: it exercises
// the WithCascade construction option itself and pins the guarantee
// over uniform vectors, clustered vectors and the discrete edit-distance
// metric in one table.

// cascadeCase builds the cascade-off and cascade-on twins of one
// structure over the same items and seed.
type cascadeCase[T any] struct {
	name string
	// orderedRange / countedKNN relax the comparison for the BK-tree,
	// whose children live in a Go map: range results come back in map
	// order (compare as multisets) and kNN traversal order varies (skip
	// the on ≤ off count check; the range check still holds, since the
	// visited set — and so the off cost — is order-independent).
	orderedRange bool
	countedKNN   bool
	build        func(items []T, dist DistanceFunc[T], cas bool) (StatsIndex[T], error)
}

func cascadeCases[T any]() []cascadeCase[T] {
	opt := func(cas bool) []IndexOption[T] {
		if !cas {
			return nil
		}
		return []IndexOption[T]{WithCascade[T](CascadeOptions{})}
	}
	seed := BuildOptions{Seed: 7}
	return []cascadeCase[T]{
		{"mvpt", true, true, func(items []T, dist DistanceFunc[T], cas bool) (StatsIndex[T], error) {
			return New(items, dist, Options{Partitions: 3, LeafCapacity: 20, PathLength: 5, Build: seed}, opt(cas)...)
		}},
		{"vpt", true, true, func(items []T, dist DistanceFunc[T], cas bool) (StatsIndex[T], error) {
			return NewVP(items, dist, VPOptions{Order: 2, Build: seed}, opt(cas)...)
		}},
		{"gmvpt", true, true, func(items []T, dist DistanceFunc[T], cas bool) (StatsIndex[T], error) {
			return NewGeneral(items, dist, GeneralOptions{Build: seed}, opt(cas)...)
		}},
		{"gnat", true, true, func(items []T, dist DistanceFunc[T], cas bool) (StatsIndex[T], error) {
			return NewGNAT(items, dist, GNATOptions{Build: seed}, opt(cas)...)
		}},
		{"ght", true, true, func(items []T, dist DistanceFunc[T], cas bool) (StatsIndex[T], error) {
			return NewGH(items, dist, GHOptions{Build: seed}, opt(cas)...)
		}},
		{"ball", true, true, func(items []T, dist DistanceFunc[T], cas bool) (StatsIndex[T], error) {
			return NewBall(items, dist, BallOptions{Build: seed}, opt(cas)...)
		}},
		{"bkt", false, false, func(items []T, dist DistanceFunc[T], cas bool) (StatsIndex[T], error) {
			return NewBK(items, dist, opt(cas)...)
		}},
	}
}

// checkCascadeInvariance runs the off/on twins of every structure over
// the query grid. discrete marks integer-valued metrics — the BK-tree
// only accepts those, so it sits out the vector workloads. wantPruned
// names structures that must report a nonzero FilteredByCascade
// somewhere in the grid — proof the cascade engaged, not just stayed
// harmless.
func checkCascadeInvariance[T any](t *testing.T, items, queries []T,
	dist DistanceFunc[T], radii []float64, ks []int, discrete bool, wantPruned map[string]bool) {
	t.Helper()
	for _, tc := range cascadeCases[T]() {
		if tc.name == "bkt" && !discrete {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			off, err := tc.build(items, dist, false)
			if err != nil {
				t.Fatalf("build (cascade off): %v", err)
			}
			on, err := tc.build(items, dist, true)
			if err != nil {
				t.Fatalf("build (cascade on): %v", err)
			}
			var pruned int
			for _, q := range queries {
				for _, r := range radii {
					offBefore := off.DistanceCount()
					resOff, _ := off.RangeWithStats(q, r)
					offCost := off.DistanceCount() - offBefore

					onBefore := on.DistanceCount()
					resOn, s := on.RangeWithStats(q, r)
					onCost := on.DistanceCount() - onBefore
					pruned += s.FilteredByCascade

					if tc.orderedRange {
						if fmt.Sprint(resOn) != fmt.Sprint(resOff) {
							t.Fatalf("range r=%g: cascade changed the result sequence", r)
						}
					} else if !sameMultiset(resOff, resOn) {
						t.Fatalf("range r=%g: cascade changed the result set", r)
					}
					if onCost > offCost {
						t.Fatalf("range r=%g: cascade cost %d distances, baseline %d", r, onCost, offCost)
					}
				}
				for _, k := range ks {
					offBefore := off.DistanceCount()
					nnOff, _ := off.KNNWithStats(q, k)
					offCost := off.DistanceCount() - offBefore

					onBefore := on.DistanceCount()
					nnOn, s := on.KNNWithStats(q, k)
					onCost := on.DistanceCount() - onBefore
					pruned += s.FilteredByCascade

					if len(nnOff) != len(nnOn) {
						t.Fatalf("knn k=%d: %d vs %d neighbors", k, len(nnOff), len(nnOn))
					}
					for i := range nnOff {
						if nnOff[i].Dist != nnOn[i].Dist {
							t.Fatalf("knn k=%d: neighbor %d distance %g vs %g", k, i, nnOff[i].Dist, nnOn[i].Dist)
						}
					}
					if tc.countedKNN && onCost > offCost {
						t.Fatalf("knn k=%d: cascade cost %d distances, baseline %d", k, onCost, offCost)
					}
				}
			}
			if wantPruned[tc.name] && pruned == 0 {
				t.Errorf("cascade never pruned a candidate on this workload")
			}
		})
	}
}

// sameMultiset compares result sets ignoring order.
func sameMultiset[T any](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i], kb[i] = fmt.Sprint(a[i]), fmt.Sprint(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func TestCascadeInvarianceUniformVectors(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0))
	items := dataset.UniformVectors(rng, 1200, 12)
	queries := dataset.UniformQueries(rng, 12, 12)
	checkCascadeInvariance(t, items, queries, L2,
		[]float64{0.15, 0.3, 0.5}, []int{1, 5, 10}, false,
		map[string]bool{"mvpt": true, "vpt": true})
}

func TestCascadeInvarianceClusteredVectors(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 0))
	items := dataset.ClusteredVectors(rng, 1200, 12, 60, 0.1)
	queries := dataset.SampleQueries(rng, items, 12)
	checkCascadeInvariance(t, items, queries, L2,
		[]float64{0.2, 0.4, 0.8}, []int{1, 5, 10}, false,
		map[string]bool{"mvpt": true, "vpt": true})
}

func TestCascadeInvarianceEditDistance(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0))
	words := dataset.Words(rng, 800, dataset.WordOptions{MisspellingsPer: 2})
	queries := dataset.SampleQueries(rng, words, 10)
	queries = append(queries, dataset.Words(rng, 5, dataset.WordOptions{})...)
	checkCascadeInvariance(t, words, queries, EditDistance,
		[]float64{1, 2, 3}, []int{1, 5, 10}, true,
		map[string]bool{"mvpt": true, "vpt": true, "bkt": true})
}
