// Wordsearch: best-match searching in a word file under edit distance —
// the original Burkhard–Keller application [BK73] and the paper's
// example of a non-spatial metric domain (§3.1). Builds a BK-tree and an
// mvp-tree over the same dictionary and answers "did you mean ...?"
// queries with both, comparing distance computations.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"strings"

	"mvptree"
)

func main() {
	dictPath := flag.String("dict", "", "dictionary file, one word per line (synthetic if empty)")
	n := flag.Int("n", 20000, "synthetic dictionary size")
	radius := flag.Float64("r", 2, "maximum edit distance for suggestions")
	flag.Parse()

	var words []string
	if *dictPath != "" {
		var err error
		words, err = readWords(*dictPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		rng := rand.New(rand.NewPCG(11, 11))
		words = mvptree.Words(rng, *n, mvptree.WordOptions{MinLen: 4, MaxLen: 12, MisspellingsPer: 1})
	}
	fmt.Printf("dictionary: %d words\n", len(words))

	bk, err := mvptree.NewBK(words, mvptree.EditDistance)
	if err != nil {
		log.Fatal(err)
	}
	mvp, err := mvptree.New(words, mvptree.EditDistance, mvptree.Options{
		Partitions: 2, LeafCapacity: 20, PathLength: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bk-tree built with %d distance computations, mvp-tree with %d\n",
		bk.Counter().Count(), mvp.Counter().Count())

	queries := flag.Args()
	if len(queries) == 0 {
		// Default demonstration: misspell a few dictionary words.
		rng := rand.New(rand.NewPCG(12, 12))
		for i := 0; i < 3; i++ {
			w := words[rng.IntN(len(words))]
			b := []byte(w)
			b[rng.IntN(len(b))] = byte('a' + rng.IntN(26))
			queries = append(queries, string(b))
		}
	}

	for _, q := range queries {
		q = strings.ToLower(strings.TrimSpace(q))
		if q == "" {
			continue
		}
		bkBefore := bk.Counter().Count()
		suggestions := bk.Range(q, *radius)
		bkCost := bk.Counter().Count() - bkBefore

		mvpBefore := mvp.Counter().Count()
		mvpResults := mvp.Range(q, *radius)
		mvpCost := mvp.Counter().Count() - mvpBefore

		fmt.Printf("\n%q → %d suggestions within distance %g\n", q, len(suggestions), *radius)
		fmt.Printf("  bk-tree:  %6d distance computations\n", bkCost)
		fmt.Printf("  mvp-tree: %6d distance computations (results agree: %v)\n",
			mvpCost, len(mvpResults) == len(suggestions))
		fmt.Printf("  linear:   %6d distance computations\n", len(words))
		for i, s := range rankByDistance(q, suggestions) {
			if i >= 8 {
				fmt.Printf("    ... %d more\n", len(suggestions)-8)
				break
			}
			fmt.Printf("    %s (d=%.0f)\n", s, mvptree.EditDistance(q, s))
		}
	}
}

// rankByDistance orders suggestions by edit distance from the query
// (then lexicographically), without extra metric calls counted against
// the indexes.
func rankByDistance(q string, words []string) []string {
	out := append([]string(nil), words...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			di, dj := mvptree.EditDistance(q, out[j]), mvptree.EditDistance(q, out[j-1])
			if di < dj || (di == dj && out[j] < out[j-1]) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}

func readWords(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var words []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		w := strings.ToLower(strings.TrimSpace(sc.Text()))
		if w != "" {
			words = append(words, w)
		}
	}
	return words, sc.Err()
}
