// Imagesearch: content-based image retrieval over gray-level images, the
// paper's second evaluation domain (§5.1.B). Builds an mvp-tree over a
// synthetic collection of "head scan" phantoms (or a directory of PGM
// files given with -dir), picks one image as the query, and retrieves
// all images within a tolerance under the pixel-wise L1 metric — then
// shows how few distance computations that took compared to comparing
// the query against every image.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mvptree"
)

func main() {
	dir := flag.String("dir", "", "directory of PGM images (optional; synthetic if empty)")
	count := flag.Int("n", 300, "synthetic collection size")
	size := flag.Int("imgdim", 64, "synthetic image side length")
	radius := flag.Float64("r", 0, "query tolerance in raw L1 units (default: auto from data)")
	metricID := flag.String("metric", "pixel", "pixel (L1 over pixels) | histogram (L1 over 256-bin intensity histograms, §5.1.B)")
	flag.Parse()

	var imgs []*mvptree.Image
	var names []string
	if *dir != "" {
		var err error
		imgs, names, err = loadPGMDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		rng := rand.New(rand.NewPCG(7, 7))
		imgs = mvptree.SyntheticImages(rng, *count, mvptree.ImageOptions{
			Width: *size, Height: *size, Subjects: 10,
		})
		names = make([]string, len(imgs))
		for i := range names {
			names[i] = fmt.Sprintf("synthetic[%d] (subject %d)", i, i%10)
		}
	}
	fmt.Printf("collection: %d images of %dx%d\n", len(imgs), imgs[0].Width, imgs[0].Height)

	// Pixel metric: the paper treats images as W·H-dimensional vectors.
	// Histogram metric: §5.1.B's alternative — gray-level images have
	// no color cross-talk, so an Lp metric over the 256-bin intensity
	// histograms works directly (and is much cheaper per computation).
	dist := mvptree.ImageL1
	if *metricID == "histogram" {
		histograms := make(map[*mvptree.Image][]float64, len(imgs))
		for _, im := range imgs {
			histograms[im] = im.Histogram256()
		}
		dist = func(a, b *mvptree.Image) float64 {
			return mvptree.L1(histograms[a], histograms[b])
		}
	}
	tree, err := mvptree.New(imgs, dist, mvptree.Options{
		Partitions: 3, LeafCapacity: 13, PathLength: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed with %d distance computations\n", tree.Counter().Count())

	// Pick a tolerance the way the paper suggests: from the distance
	// distribution. A radius below the intra/inter gap retrieves
	// same-subject images only.
	if *radius == 0 {
		h := mvptree.SampledPairwiseHistogram(rand.New(rand.NewPCG(8, 8)), imgs, dist,
			1000, 4000)
		*radius = h.Quantile(0.10)
		fmt.Printf("auto tolerance: r=%.0f (10th percentile of pairwise distances)\n", *radius)
	}

	query := imgs[0]
	before := tree.Counter().Count()
	matches := tree.Range(query, *radius)
	cost := tree.Counter().Count() - before
	fmt.Printf("query %s: %d similar images found with %d distance computations (linear scan: %d)\n",
		names[0], len(matches), cost, len(imgs))

	// Rank matches by distance for display.
	type hit struct {
		name string
		d    float64
	}
	byImage := make(map[*mvptree.Image]string, len(imgs))
	for i, im := range imgs {
		byImage[im] = names[i]
	}
	var hits []hit
	for _, m := range matches {
		hits = append(hits, hit{byImage[m], dist(query, m)})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].d < hits[j].d })
	for i, h := range hits {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(hits)-10)
			break
		}
		fmt.Printf("  d=%-12.0f %s\n", h.d, h.name)
	}
}

func loadPGMDir(dir string) ([]*mvptree.Image, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var imgs []*mvptree.Image
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pgm") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		im, err := mvptree.DecodePGM(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		imgs = append(imgs, im)
		names = append(names, e.Name())
	}
	if len(imgs) == 0 {
		return nil, nil, fmt.Errorf("no .pgm files in %s", dir)
	}
	return imgs, names, nil
}
