// Catalog: a living similarity catalog. Demonstrates the two
// production features layered over the paper's static tree: persistence
// (build once, save, reload with zero distance computations) and dynamic
// updates (the paper's §6 open problem — inserts and deletes with
// amortized O(log n) cost via buffer + tombstones + rebuild).
//
// The scenario: a catalog of feature vectors (say, product embeddings)
// that is built in a batch job, shipped to servers as a file, and then
// kept fresh online as items come and go.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"

	"mvptree"
)

func main() {
	rng := rand.New(rand.NewPCG(33, 33))
	catalog := mvptree.UniformVectors(rng, 20000, 16)

	// --- Batch job: build and persist. -------------------------------
	tree, err := mvptree.New(catalog, mvptree.L2, mvptree.Options{
		Partitions: 3, LeafCapacity: 80, PathLength: 5,
		Build: mvptree.BuildOptions{Workers: 4}, // parallel construction; identical tree
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch build: %d items, %d distance computations, height %d\n",
		tree.Len(), tree.Counter().Count(), tree.Height())

	path := filepath.Join(os.TempDir(), "catalog.mvpt")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := mvptree.SaveTree(f, tree, mvptree.EncodeVector); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("saved to %s (%d bytes)\n", path, info.Size())

	// --- Server startup: reload without recomputing anything. --------
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	reloaded, err := mvptree.LoadTree(rf, mvptree.L2, mvptree.DecodeVector)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded: %d items, %d distance computations spent loading\n",
		reloaded.Len(), reloaded.Counter().Count())

	q := catalog[42]
	before := reloaded.Counter().Count()
	nn := reloaded.KNN(q, 5)
	fmt.Printf("knn on reloaded tree: top dist %.3f..%.3f, %d computations\n",
		nn[0].Dist, nn[4].Dist, reloaded.Counter().Count()-before)

	// --- Online phase: the catalog changes. --------------------------
	store, err := mvptree.NewDynamic(catalog, mvptree.L2, mvptree.DynamicOptions{
		Tree: mvptree.Options{Partitions: 3, LeafCapacity: 80, PathLength: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	buildCost := store.DistanceCount()

	newItem := mvptree.UniformVectors(rng, 1, 16)[0]
	for i := 0; i < 8000; i++ {
		if err := store.Insert(mvptree.UniformVectors(rng, 1, 16)[0]); err != nil {
			log.Fatal(err)
		}
	}
	if err := store.Insert(newItem); err != nil {
		log.Fatal(err)
	}
	removed, err := store.Delete(catalog[7])
	if err != nil {
		log.Fatal(err)
	}
	updateCost := store.DistanceCount() - buildCost
	fmt.Printf("online: +8001 inserts, -%d delete → %d items, %.1f distance computations per update, %d rebuilds\n",
		removed, store.Len(), float64(updateCost)/8002, store.Rebuilds()-1)

	got := store.Range(newItem, 0)
	fmt.Printf("new item findable: %v; deleted item findable: %v\n",
		len(got) == 1, len(store.Range(catalog[7], 0)) > 0)

	os.Remove(path)
}
