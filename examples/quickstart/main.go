// Quickstart: build an mvp-tree over high-dimensional vectors, run a
// range query and a k-nearest-neighbor query, and compare the number of
// distance computations against a linear scan — the paper's cost
// measure.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"mvptree"
)

func main() {
	rng := rand.New(rand.NewPCG(1, 1))

	// 10,000 random 20-dimensional vectors, the paper's uniform
	// workload at a fifth of its size.
	vectors := mvptree.UniformVectors(rng, 10000, 20)

	// The mvp-tree: m=3 partitions per vantage point (fanout 9),
	// large leaves (k=80), and p=5 pre-computed distances per leaf
	// point — the paper's best configuration.
	tree, err := mvptree.New(vectors, mvptree.L2, mvptree.Options{
		Partitions:   3,
		LeafCapacity: 80,
		PathLength:   5,
	})
	if err != nil {
		log.Fatal(err)
	}
	buildCost := tree.Counter().Count()
	fmt.Printf("built mvp-tree over %d vectors: %d distance computations, height %d\n",
		tree.Len(), buildCost, tree.Height())

	query := mvptree.UniformVectors(rng, 1, 20)[0]

	// Range query: everything within distance 0.3 of the query.
	before := tree.Counter().Count()
	near := tree.Range(query, 0.3)
	rangeCost := tree.Counter().Count() - before
	fmt.Printf("range r=0.3: %d results using %d distance computations (linear scan: %d)\n",
		len(near), rangeCost, tree.Len())

	// k-nearest-neighbor query.
	before = tree.Counter().Count()
	nn := tree.KNN(query, 5)
	knnCost := tree.Counter().Count() - before
	fmt.Printf("knn k=5: %d distance computations; nearest at d=%.4f\n", knnCost, nn[0].Dist)

	// The same queries on a vp-tree, for the paper's comparison.
	vp, err := mvptree.NewVP(vectors, mvptree.L2, mvptree.VPOptions{Order: 2})
	if err != nil {
		log.Fatal(err)
	}
	vpBuild := vp.Counter().Count()
	before = vp.Counter().Count()
	vpNear := vp.Range(query, 0.3)
	vpCost := vp.Counter().Count() - before
	fmt.Printf("vp-tree:     %d results using %d distance computations (build %d)\n",
		len(vpNear), vpCost, vpBuild)
	if vpCost > 0 {
		fmt.Printf("mvp-tree saves %.1f%% of distance computations on this query\n",
			100*(1-float64(rangeCost)/float64(vpCost)))
	}
}
