// Timeseries: find recurring patterns in a time series — one of the
// motivating applications in the paper's introduction ("in time-series
// analysis, we would like to find similar patterns among a given
// collection of sequences"). A long synthetic signal is cut into
// z-normalized sliding windows, the windows are indexed in an mvp-tree
// under L2, and a query pattern retrieves every occurrence cheaply.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"sort"

	"mvptree"
)

const windowLen = 32

// window is one z-normalized subsequence, tagged with its start offset.
type window struct {
	start  int
	values []float64
}

func main() {
	length := flag.Int("len", 50000, "length of the synthetic series")
	radius := flag.Float64("r", 1.5, "match tolerance (L2 on z-normalized windows)")
	flag.Parse()

	series := syntheticSeries(*length)
	windows := slidingWindows(series, windowLen, windowLen/4)
	fmt.Printf("series of %d points → %d windows of length %d\n",
		len(series), len(windows), windowLen)

	dist := func(a, b window) float64 { return mvptree.L2(a.values, b.values) }
	tree, err := mvptree.New(windows, dist, mvptree.Options{
		Partitions: 3, LeafCapacity: 40, PathLength: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed with %d distance computations\n", tree.Counter().Count())

	// Query: the planted motif shape itself.
	q := window{start: -1, values: znormalize(motif(windowLen))}
	before := tree.Counter().Count()
	matches := tree.Range(q, *radius)
	cost := tree.Counter().Count() - before
	fmt.Printf("pattern search r=%g: %d matching windows with %d distance computations (linear scan: %d)\n",
		*radius, len(matches), cost, len(windows))

	sort.Slice(matches, func(i, j int) bool { return matches[i].start < matches[j].start })
	for i, m := range matches {
		if i >= 12 {
			fmt.Printf("  ... %d more\n", len(matches)-12)
			break
		}
		fmt.Printf("  offset %6d  d=%.3f\n", m.start, dist(q, m))
	}
}

// syntheticSeries is a noisy random walk with the motif planted at
// irregular intervals.
func syntheticSeries(n int) []float64 {
	rng := rand.New(rand.NewPCG(21, 21))
	s := make([]float64, n)
	level := 0.0
	for i := range s {
		level += rng.Float64() - 0.5
		s[i] = level + (rng.Float64()-0.5)*0.2
	}
	shape := motif(windowLen)
	hop := windowLen / 4
	for at := 1000; at+windowLen < n; at += (2000 + rng.IntN(3000)) / hop * hop {
		for j, v := range shape {
			s[at+j] = s[at] + v*3 // superimpose the motif on the walk level
		}
	}
	return s
}

// motif is the planted pattern: one period of a spiky sine.
func motif(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		x := 2 * math.Pi * float64(i) / float64(n)
		out[i] = math.Sin(x) + 0.5*math.Sin(3*x)
	}
	return out
}

// slidingWindows cuts the series into z-normalized windows with the
// given hop, so matches are invariant to offset and scale — standard
// practice in subsequence matching [AFA93, FRM94].
func slidingWindows(s []float64, w, hop int) []window {
	var out []window
	for start := 0; start+w <= len(s); start += hop {
		out = append(out, window{start: start, values: znormalize(s[start : start+w])})
	}
	return out
}

func znormalize(v []float64) []float64 {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	var sd float64
	for _, x := range v {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(v)))
	if sd == 0 {
		sd = 1
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = (x - mean) / sd
	}
	return out
}
