package mvptree_test

import (
	"fmt"
	"math/rand/v2"

	"mvptree"
)

// The basic flow: build an mvp-tree over a metric dataset, answer range
// and k-nearest-neighbor queries, and read the cost meter.
func ExampleNew() {
	rng := rand.New(rand.NewPCG(1, 2))
	vectors := mvptree.UniformVectors(rng, 2000, 12)

	tree, err := mvptree.New(vectors, mvptree.L2, mvptree.Options{
		Partitions:   3,
		LeafCapacity: 40,
		PathLength:   5,
		Build:        mvptree.BuildOptions{Seed: 7},
	})
	if err != nil {
		panic(err)
	}

	q := vectors[0]
	near := tree.Range(q, 0.4)
	nn := tree.KNN(q, 3)
	fmt.Println("indexed:", tree.Len())
	fmt.Println("in range:", len(near) > 0)
	fmt.Println("nearest is the query itself:", nn[0].Dist == 0)
	fmt.Println("cheaper than linear scan:", tree.Counter().Count() > 0)
	// Output:
	// indexed: 2000
	// in range: true
	// nearest is the query itself: true
	// cheaper than linear scan: true
}

// Any type works with any metric distance function: here, strings under
// edit distance.
func ExampleNewBK() {
	words := []string{"paper", "taper", "tiger", "pager", "viper", "wiper"}
	tree, err := mvptree.NewBK(words, mvptree.EditDistance)
	if err != nil {
		panic(err)
	}
	for _, w := range tree.Range("payer", 1) {
		fmt.Println(w)
	}
	// Unordered output:
	// paper
	// pager
}

// Validating a hand-written metric before trusting an index with it.
func ExampleCheckAxioms() {
	squared := func(a, b []float64) float64 {
		d := a[0] - b[0]
		return d * d // violates the triangle inequality
	}
	sample := [][]float64{{0}, {1}, {2}}
	err := mvptree.CheckAxioms(squared, sample, 0)
	fmt.Println(err != nil)
	// Output:
	// true
}

// Farthest-object queries, the §2 variants.
func ExampleTree_KFarthest() {
	points := [][]float64{{0}, {1}, {5}, {9}}
	tree, err := mvptree.New(points, mvptree.L2, mvptree.Options{LeafCapacity: 2, Build: mvptree.BuildOptions{Seed: 1}})
	if err != nil {
		panic(err)
	}
	for _, nb := range tree.KFarthest([]float64{0}, 2) {
		fmt.Println(nb.Dist)
	}
	// Output:
	// 9
	// 5
}

// Per-query instrumentation: how much work each filtering stage did.
func ExampleTree_RangeWithStats() {
	rng := rand.New(rand.NewPCG(3, 4))
	vectors := mvptree.UniformVectors(rng, 3000, 16)
	tree, err := mvptree.New(vectors, mvptree.L2, mvptree.Options{
		Partitions: 3, LeafCapacity: 80, PathLength: 5, Build: mvptree.BuildOptions{Seed: 1},
	})
	if err != nil {
		panic(err)
	}
	_, stats := tree.RangeWithStats(vectors[0], 0.3)
	fmt.Println("accounting holds:", stats.Candidates == stats.FilteredByD+stats.FilteredByPath+stats.Computed)
	fmt.Println("most candidates filtered for free:", stats.Computed*2 < stats.Candidates)
	// Output:
	// accounting holds: true
	// most candidates filtered for free: true
}

// A mutable index: the paper's open problem, solved with amortized
// rebuilds.
func ExampleNewDynamic() {
	rng := rand.New(rand.NewPCG(5, 6))
	store, err := mvptree.NewDynamic(mvptree.UniformVectors(rng, 500, 8), mvptree.L2, mvptree.DynamicOptions{})
	if err != nil {
		panic(err)
	}
	item := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := store.Insert(item); err != nil {
		panic(err)
	}
	fmt.Println("found after insert:", len(store.Range(item, 0)) == 1)
	n, err := store.Delete(item)
	if err != nil {
		panic(err)
	}
	fmt.Println("deleted:", n)
	fmt.Println("found after delete:", len(store.Range(item, 0)) == 1)
	// Output:
	// found after insert: true
	// deleted: 1
	// found after delete: false
}
