// Package mvptree is a distance-based indexing library for
// high-dimensional metric spaces, implementing the multi-vantage-point
// (mvp) tree of Bozkaya & Ozsoyoglu (SIGMOD 1997) together with the
// family of related metric index structures: vantage-point trees
// [Uhl91, Yia93], generalized hyperplane trees [Uhl91], GNAT [Bri95],
// BK-trees [BK73] and a pivot-table index in the spirit of [SW90].
//
// All structures answer the same two similarity queries over any metric
// space — range queries ("all items within distance r of q") and
// k-nearest-neighbor queries — using only a user-supplied metric
// distance function; no coordinates, no geometry. Their shared cost
// model is the number of distance computations, on the assumption that
// distances in high-dimensional or non-spatial domains (images,
// sequences, text) are expensive; every index counts its metric
// invocations, and the Counter on each tree exposes both construction
// and per-query costs.
//
// # Quick start
//
//	dist := mvptree.L2 // or any func(T, T) float64 satisfying the metric axioms
//	tree, err := mvptree.New(vectors, dist, mvptree.Options{
//		Partitions:   3,  // m: fanout is m² per node
//		LeafCapacity: 80, // k: large leaves maximize pre-computed filtering
//		PathLength:   5,  // p: ancestor distances kept per leaf point
//	})
//	if err != nil { ... }
//	near := tree.Range(query, 0.3)   // all items within 0.3 of query
//	nn := tree.KNN(query, 10)        // 10 nearest neighbors
//	cost := tree.Counter().Count()   // distance computations so far
//
// The mvp-tree is the flagship: it uses two vantage points per node
// (fanout m² with half the vantage points of an equivalent vp-tree) and
// stores, for every leaf point, its pre-computed distances to ancestor
// vantage points, which filter leaf candidates through the triangle
// inequality before any real distance computation. On the paper's
// workloads it makes 20–80% fewer distance computations than vp-trees.
//
// All indexes are static (bulk-built and immutable), matching the
// paper's setting; rebuild to change contents. The BK-tree, naturally
// incremental, additionally offers Insert, and the dynamic store
// serializes its updates against in-flight queries internally.
//
// # Concurrency
//
// Queries are safe to run concurrently: Range, KNN and their stats
// variants mutate no index state, and the Counter is atomic. Note the
// Counter is process-wide per index — concurrent queries interleave
// their increments, so a Count delta brackets the *batch*, not any one
// query. For per-query attribution under concurrency use
// RangeWithStats / KNNWithStats, whose SearchStats are computed from
// local traversal state. BatchRange and BatchKNN run a whole query
// batch across a worker pool with deterministic results and counts:
//
//	results, stats := mvptree.BatchRange(tree, queries, 0.3,
//		mvptree.BatchOptions{Workers: 8})
//	// results[i] answers queries[i]; stats.Distances is identical
//	// for any worker count.
//
// Construction (with or without Workers) and BK-tree or dynamic-store
// mutation must still be externally serialized against queries on the
// same index, except for the dynamic store's own Insert/Delete, which
// take the store's internal lock.
//
// The internal packages carry the full implementations; this package
// re-exports the public surface. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for the reproduction of every figure in the paper.
package mvptree
