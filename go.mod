module mvptree

go 1.24
