package mvptree_test

// End-to-end integration across modules: generate a workload, build
// every structure, cross-check all query variants, persist and reload,
// then continue with dynamic updates — the full lifecycle a downstream
// user would run, exercised in one test.

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"mvptree"
)

func TestFullLifecycle(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 1))
	dataset := mvptree.ClusteredVectors(rng, 2000, 10, 100, 0.15)
	queries := mvptree.UniformVectors(rng, 8, 10)

	// Stage 1: build the paper's configuration.
	tree, err := mvptree.New(dataset, mvptree.L2, mvptree.Options{
		Partitions: 3, LeafCapacity: 40, PathLength: 5, Workers: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	scan := mvptree.NewLinear(dataset, mvptree.L2)

	// Stage 2: all query variants agree with brute force.
	for _, q := range queries {
		r := 0.6
		if got, want := len(tree.Range(q, r)), len(scan.Range(q, r)); got != want {
			t.Fatalf("Range: %d vs %d", got, want)
		}
		if got, want := len(tree.RangeFarther(q, 2.0)), len(scan.RangeFarther(q, 2.0)); got != want {
			t.Fatalf("RangeFarther: %d vs %d", got, want)
		}
		nn, fn := tree.KNN(q, 7), scan.KNN(q, 7)
		for i := range nn {
			if nn[i].Dist != fn[i].Dist {
				t.Fatalf("KNN dist[%d]: %g vs %g", i, nn[i].Dist, fn[i].Dist)
			}
		}
		kf, lf := tree.KFarthest(q, 3), scan.KFarthest(q, 3)
		for i := range kf {
			if kf[i].Dist != lf[i].Dist {
				t.Fatalf("KFarthest dist[%d]: %g vs %g", i, kf[i].Dist, lf[i].Dist)
			}
		}
		if got, _ := tree.KNNBudgeted(q, 7, 1<<40); got[6].Dist != fn[6].Dist {
			t.Fatal("KNNBudgeted(∞) differs from exact")
		}
		if _, s := tree.RangeWithStats(q, r); s.Candidates != s.FilteredByD+s.FilteredByPath+s.Computed {
			t.Fatalf("stats accounting: %+v", s)
		}
	}

	// Stage 3: persist and reload; identical behaviour, zero cost.
	var buf bytes.Buffer
	if err := mvptree.SaveTree(&buf, tree, mvptree.EncodeVector); err != nil {
		t.Fatal(err)
	}
	loaded, err := mvptree.LoadTree(&buf, mvptree.L2, mvptree.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Counter().Count() != 0 {
		t.Fatalf("reload cost %d distance computations", loaded.Counter().Count())
	}
	for _, q := range queries {
		a, b := tree.KNN(q, 5), loaded.KNN(q, 5)
		for i := range a {
			if a[i].Dist != b[i].Dist {
				t.Fatal("reloaded tree answers differently")
			}
		}
	}

	// Stage 4: the collection evolves — switch to the dynamic store.
	store, err := mvptree.NewDynamic(dataset, mvptree.L2, mvptree.DynamicOptions{
		Tree: mvptree.Options{Partitions: 3, LeafCapacity: 40, PathLength: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	extra := mvptree.UniformVectors(rng, 700, 10)
	for _, v := range extra {
		if err := store.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	removedTotal := 0
	for i := 0; i < 50; i++ {
		n, err := store.Delete(dataset[i*7])
		if err != nil {
			t.Fatal(err)
		}
		removedTotal += n
	}
	if store.Len() != 2000+700-removedTotal {
		t.Fatalf("Len = %d after churn", store.Len())
	}
	// Final agreement check against a fresh model of the same state.
	model := append([][]float64{}, extra...)
	deleted := map[int]bool{}
	for i := 0; i < 50; i++ {
		deleted[i*7] = true
	}
	for i, v := range dataset {
		if !deleted[i] {
			model = append(model, v)
		}
	}
	modelScan := mvptree.NewLinear(model, mvptree.L2)
	for _, q := range queries {
		if got, want := len(store.Range(q, 0.6)), len(modelScan.Range(q, 0.6)); got != want {
			t.Fatalf("post-churn Range: %d vs %d", got, want)
		}
	}
}
