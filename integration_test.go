package mvptree_test

// End-to-end integration across modules: generate a workload, build
// every structure, cross-check all query variants, persist and reload,
// then continue with dynamic updates — the full lifecycle a downstream
// user would run, exercised in one test.

import (
	"bytes"
	"math/rand/v2"
	"sync"
	"testing"

	"mvptree"
)

func TestFullLifecycle(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 1))
	dataset := mvptree.ClusteredVectors(rng, 2000, 10, 100, 0.15)
	queries := mvptree.UniformVectors(rng, 8, 10)

	// Stage 1: build the paper's configuration.
	tree, err := mvptree.New(dataset, mvptree.L2, mvptree.Options{
		Partitions: 3, LeafCapacity: 40, PathLength: 5, Build: mvptree.BuildOptions{Workers: 2, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	scan := mvptree.NewLinear(dataset, mvptree.L2)

	// Stage 2: all query variants agree with brute force.
	for _, q := range queries {
		r := 0.6
		if got, want := len(tree.Range(q, r)), len(scan.Range(q, r)); got != want {
			t.Fatalf("Range: %d vs %d", got, want)
		}
		if got, want := len(tree.RangeFarther(q, 2.0)), len(scan.RangeFarther(q, 2.0)); got != want {
			t.Fatalf("RangeFarther: %d vs %d", got, want)
		}
		nn, fn := tree.KNN(q, 7), scan.KNN(q, 7)
		for i := range nn {
			if nn[i].Dist != fn[i].Dist {
				t.Fatalf("KNN dist[%d]: %g vs %g", i, nn[i].Dist, fn[i].Dist)
			}
		}
		kf, lf := tree.KFarthest(q, 3), scan.KFarthest(q, 3)
		for i := range kf {
			if kf[i].Dist != lf[i].Dist {
				t.Fatalf("KFarthest dist[%d]: %g vs %g", i, kf[i].Dist, lf[i].Dist)
			}
		}
		if got, _ := tree.KNNBudgeted(q, 7, 1<<40); got[6].Dist != fn[6].Dist {
			t.Fatal("KNNBudgeted(∞) differs from exact")
		}
		if _, s := tree.RangeWithStats(q, r); s.Candidates != s.FilteredByD+s.FilteredByPath+s.Computed {
			t.Fatalf("stats accounting: %+v", s)
		}
	}

	// Stage 3: persist and reload; identical behaviour, zero cost.
	var buf bytes.Buffer
	if err := mvptree.SaveTree(&buf, tree, mvptree.EncodeVector); err != nil {
		t.Fatal(err)
	}
	loaded, err := mvptree.LoadTree(&buf, mvptree.L2, mvptree.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Counter().Count() != 0 {
		t.Fatalf("reload cost %d distance computations", loaded.Counter().Count())
	}
	for _, q := range queries {
		a, b := tree.KNN(q, 5), loaded.KNN(q, 5)
		for i := range a {
			if a[i].Dist != b[i].Dist {
				t.Fatal("reloaded tree answers differently")
			}
		}
	}

	// Stage 4: the collection evolves — switch to the dynamic store.
	store, err := mvptree.NewDynamic(dataset, mvptree.L2, mvptree.DynamicOptions{
		Tree: mvptree.Options{Partitions: 3, LeafCapacity: 40, PathLength: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	extra := mvptree.UniformVectors(rng, 700, 10)
	for _, v := range extra {
		if err := store.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	removedTotal := 0
	for i := 0; i < 50; i++ {
		n, err := store.Delete(dataset[i*7])
		if err != nil {
			t.Fatal(err)
		}
		removedTotal += n
	}
	if store.Len() != 2000+700-removedTotal {
		t.Fatalf("Len = %d after churn", store.Len())
	}
	// Final agreement check against a fresh model of the same state.
	model := append([][]float64{}, extra...)
	deleted := map[int]bool{}
	for i := 0; i < 50; i++ {
		deleted[i*7] = true
	}
	for i, v := range dataset {
		if !deleted[i] {
			model = append(model, v)
		}
	}
	modelScan := mvptree.NewLinear(model, mvptree.L2)
	for _, q := range queries {
		if got, want := len(store.Range(q, 0.6)), len(modelScan.Range(q, 0.6)); got != want {
			t.Fatalf("post-churn Range: %d vs %d", got, want)
		}
	}
}

// TestConcurrentQueriesAllStructures is the concurrency smoke test for
// the public API: every exported index type serves a mixed Range/KNN
// load from N goroutines sharing one instance, and every concurrent
// answer must equal the sequential answer. Run under -race (CI does)
// this also proves the query paths share no mutable state beyond the
// atomic distance Counter.
func TestConcurrentQueriesAllStructures(t *testing.T) {
	rng := rand.New(rand.NewPCG(88, 2))
	vectors := mvptree.UniformVectors(rng, 1200, 8)
	vecQueries := mvptree.UniformVectors(rng, 6, 8)
	words := []string{
		"metric", "space", "vantage", "point", "tree", "index", "query",
		"range", "neighbor", "distance", "triangle", "inequality", "shell",
		"partition", "leaf", "path", "filter", "pivot", "search", "batch",
	}
	wordQueries := []string{"metric", "tre", "pint", "queery"}

	type vecCase struct {
		name  string
		build func() (mvptree.Index[[]float64], error)
	}
	vecCases := []vecCase{
		{"mvp", func() (mvptree.Index[[]float64], error) {
			return mvptree.New(vectors, mvptree.L2, mvptree.Options{Partitions: 3, LeafCapacity: 20, PathLength: 4, Build: mvptree.BuildOptions{Seed: 1}})
		}},
		{"vp", func() (mvptree.Index[[]float64], error) {
			return mvptree.NewVP(vectors, mvptree.L2, mvptree.VPOptions{Order: 3, Build: mvptree.BuildOptions{Seed: 1}})
		}},
		{"gh", func() (mvptree.Index[[]float64], error) {
			return mvptree.NewGH(vectors, mvptree.L2, mvptree.GHOptions{})
		}},
		{"gnat", func() (mvptree.Index[[]float64], error) {
			return mvptree.NewGNAT(vectors, mvptree.L2, mvptree.GNATOptions{})
		}},
		{"ball", func() (mvptree.Index[[]float64], error) {
			return mvptree.NewBall(vectors, mvptree.L2, mvptree.BallOptions{})
		}},
		{"pivot", func() (mvptree.Index[[]float64], error) {
			return mvptree.NewPivotTable(vectors, mvptree.L2, mvptree.PivotOptions{Pivots: 8, Build: mvptree.BuildOptions{Seed: 1}})
		}},
		{"general", func() (mvptree.Index[[]float64], error) {
			return mvptree.NewGeneral(vectors, mvptree.L2, mvptree.GeneralOptions{Vantages: 3, Partitions: 2, Build: mvptree.BuildOptions{Seed: 1}})
		}},
		{"linear", func() (mvptree.Index[[]float64], error) {
			return mvptree.NewLinear(vectors, mvptree.L2), nil
		}},
		{"dynamic", func() (mvptree.Index[[]float64], error) {
			return mvptree.NewDynamic(vectors, mvptree.L2, mvptree.DynamicOptions{
				Tree: mvptree.Options{Partitions: 2, LeafCapacity: 20, PathLength: 3, Build: mvptree.BuildOptions{Seed: 1}},
			})
		}},
	}
	for _, tc := range vecCases {
		t.Run(tc.name, func(t *testing.T) {
			idx, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			checkConcurrentAgreement(t, idx, vecQueries, 0.6, 5)
		})
	}
	t.Run("bk", func(t *testing.T) {
		idx, err := mvptree.NewBK(words, mvptree.EditDistance)
		if err != nil {
			t.Fatal(err)
		}
		checkConcurrentAgreement(t, mvptree.Index[string](idx), wordQueries, 2, 3)
	})
}

// checkConcurrentAgreement answers each query sequentially first, then
// fires goroutines repeating the same mixed Range/KNN load concurrently
// against the shared index and compares every answer.
func checkConcurrentAgreement[T any](t *testing.T, idx mvptree.Index[T], queries []T, r float64, k int) {
	t.Helper()
	wantRange := make([][]T, len(queries))
	wantKNN := make([][]mvptree.Neighbor[T], len(queries))
	for i, q := range queries {
		wantRange[i] = idx.Range(q, r)
		wantKNN[i] = idx.KNN(q, k)
	}
	var wg sync.WaitGroup
	const goroutines = 8
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				i := (g + rep) % len(queries)
				q := queries[i]
				if got := idx.Range(q, r); len(got) != len(wantRange[i]) {
					t.Errorf("goroutine %d: Range returned %d items, sequential %d", g, len(got), len(wantRange[i]))
					return
				}
				got := idx.KNN(q, k)
				if len(got) != len(wantKNN[i]) {
					t.Errorf("goroutine %d: KNN returned %d items, sequential %d", g, len(got), len(wantKNN[i]))
					return
				}
				for j := range got {
					if got[j].Dist != wantKNN[i][j].Dist {
						t.Errorf("goroutine %d: KNN[%d].Dist = %g, sequential %g", g, j, got[j].Dist, wantKNN[i][j].Dist)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBatchExecutorPublicAPI drives the exported BatchRange/BatchKNN
// wrappers end to end: deterministic results across worker counts and a
// Counter delta that reconciles with the aggregated SearchStats.
func TestBatchExecutorPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewPCG(89, 2))
	vectors := mvptree.UniformVectors(rng, 1500, 8)
	queries := mvptree.UniformVectors(rng, 12, 8)
	tree, err := mvptree.New(vectors, mvptree.L2, mvptree.Options{Partitions: 3, LeafCapacity: 40, PathLength: 4, Build: mvptree.BuildOptions{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	tree.Counter().Reset()
	seqRes, seqStats, _ := mvptree.BatchRange[[]float64](tree, queries, 0.5, mvptree.BatchOptions{Workers: 1})
	tree.Counter().Reset()
	parRes, parStats, _ := mvptree.BatchRange[[]float64](tree, queries, 0.5, mvptree.BatchOptions{Workers: 8})
	if seqStats.Distances != parStats.Distances {
		t.Errorf("batch cost %d with 1 worker, %d with 8", seqStats.Distances, parStats.Distances)
	}
	if seqStats.Distances == 0 {
		t.Error("batch made no distance computations")
	}
	if parStats.Search != seqStats.Search {
		t.Errorf("aggregated SearchStats differ across worker counts")
	}
	if got := int64(parStats.Search.Computed + parStats.Search.VantagePoints); got != parStats.Distances {
		t.Errorf("SearchStats account for %d computations, Counter delta %d", got, parStats.Distances)
	}
	for i := range queries {
		if len(seqRes[i]) != len(parRes[i]) {
			t.Errorf("query %d: %d results sequential, %d parallel", i, len(seqRes[i]), len(parRes[i]))
		}
	}
	if _, stats, _ := mvptree.BatchKNN[[]float64](tree, queries, 5, mvptree.BatchOptions{Workers: 4}); !stats.HasSearch {
		t.Error("BatchKNN over an mvp-tree should aggregate SearchStats")
	}
}
