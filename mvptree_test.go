package mvptree_test

// Black-box tests of the public facade: everything here uses only the
// exported API, the way a downstream user would.

import (
	"bytes"
	"math/rand/v2"
	"sort"
	"testing"

	"mvptree"
)

func TestQuickstartFlow(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	vectors := mvptree.UniformVectors(rng, 1000, 12)
	tree, err := mvptree.New(vectors, mvptree.L2, mvptree.Options{
		Partitions: 3, LeafCapacity: 40, PathLength: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 1000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	build := tree.Counter().Count()
	if build <= 0 {
		t.Error("construction made no distance computations")
	}

	q := vectors[0]
	got := tree.Range(q, 0.4)
	scan := mvptree.NewLinear(vectors, mvptree.L2)
	want := scan.Range(q, 0.4)
	if len(got) != len(want) {
		t.Errorf("Range found %d items, linear scan %d", len(got), len(want))
	}
	queryCost := tree.Counter().Count() - build
	if queryCost <= 0 || queryCost >= int64(tree.Len()) {
		t.Errorf("query cost %d; want within (0, n)", queryCost)
	}

	nn := tree.KNN(q, 5)
	if len(nn) != 5 || nn[0].Dist != 0 {
		t.Errorf("KNN(self, 5) = %v", nn)
	}
}

func TestAllStructuresAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 1))
	vectors := mvptree.UniformVectors(rng, 500, 8)
	queries := mvptree.UniformVectors(rng, 5, 8)

	type namedIndex struct {
		name string
		idx  mvptree.Index[[]float64]
	}
	var indexes []namedIndex
	mustBuild := func(name string, idx mvptree.Index[[]float64], err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		indexes = append(indexes, namedIndex{name, idx})
	}
	mvpTree, err := mvptree.New(vectors, mvptree.L2, mvptree.Options{})
	mustBuild("mvp", mvpTree, err)
	vpTree, err := mvptree.NewVP(vectors, mvptree.L2, mvptree.VPOptions{})
	mustBuild("vp", vpTree, err)
	ghTree, err := mvptree.NewGH(vectors, mvptree.L2, mvptree.GHOptions{})
	mustBuild("gh", ghTree, err)
	gnatTree, err := mvptree.NewGNAT(vectors, mvptree.L2, mvptree.GNATOptions{})
	mustBuild("gnat", gnatTree, err)
	pivots, err := mvptree.NewPivotTable(vectors, mvptree.L2, mvptree.PivotOptions{})
	mustBuild("pivots", pivots, err)
	indexes = append(indexes, namedIndex{"linear", mvptree.NewLinear(vectors, mvptree.L2)})

	for _, q := range queries {
		for _, r := range []float64{0.2, 0.5, 1.0} {
			want := signature(indexes[len(indexes)-1].idx.Range(q, r))
			for _, ni := range indexes {
				got := signature(ni.idx.Range(q, r))
				if len(got) != len(want) {
					t.Fatalf("%s: Range r=%g found %d items, linear %d", ni.name, r, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: Range r=%g result set differs from linear scan", ni.name, r)
					}
				}
			}
		}
		for _, k := range []int{1, 7} {
			want := indexes[len(indexes)-1].idx.KNN(q, k)
			for _, ni := range indexes {
				got := ni.idx.KNN(q, k)
				if len(got) != len(want) {
					t.Fatalf("%s: KNN k=%d returned %d items", ni.name, k, len(got))
				}
				for i := range got {
					if diff := got[i].Dist - want[i].Dist; diff > 1e-9 || diff < -1e-9 {
						t.Fatalf("%s: KNN k=%d dist[%d] = %g, want %g", ni.name, k, i, got[i].Dist, want[i].Dist)
					}
				}
			}
		}
	}
}

// signature canonicalizes a vector result set for comparison.
func signature(items [][]float64) []string {
	out := make([]string, len(items))
	for i, v := range items {
		b := make([]byte, 0, len(v)*8)
		for _, x := range v {
			b = appendFloat(b, x)
		}
		out[i] = string(b)
	}
	sort.Strings(out)
	return out
}

func appendFloat(b []byte, x float64) []byte {
	u := uint64(int64(x * 1e12))
	for i := 0; i < 8; i++ {
		b = append(b, byte(u>>(8*i)))
	}
	return b
}

func TestBKTreePublicAPI(t *testing.T) {
	words := []string{"hello", "hallo", "hullo", "world", "wold", "help"}
	tree, err := mvptree.NewBK(words, mvptree.EditDistance)
	if err != nil {
		t.Fatal(err)
	}
	got := tree.Range("hello", 1)
	if len(got) != 3 { // hello, hallo, hullo
		t.Errorf("Range(hello, 1) = %v", got)
	}
	if err := tree.Insert("hell"); err != nil {
		t.Fatal(err)
	}
	if got := tree.Range("hello", 1); len(got) != 4 {
		t.Errorf("after Insert, Range(hello, 1) = %v", got)
	}
}

func TestMetricsFacade(t *testing.T) {
	a, b := []float64{0, 0}, []float64{3, 4}
	if mvptree.L1(a, b) != 7 || mvptree.L2(a, b) != 5 || mvptree.LInf(a, b) != 4 {
		t.Error("vector metrics wrong")
	}
	if mvptree.Lp(2)(a, b) != 5 {
		t.Error("Lp wrong")
	}
	if mvptree.WeightedLp(1, []float64{1, 2})(a, b) != 11 {
		t.Error("WeightedLp wrong")
	}
	if mvptree.Scaled(mvptree.L1, 2)(a, b) != 14 {
		t.Error("Scaled wrong")
	}
	if mvptree.EditDistance("abc", "axc") != 1 || mvptree.HammingDistance("abc", "axc") != 1 {
		t.Error("string metrics wrong")
	}
	if mvptree.Discrete[int]()(1, 1) != 0 || mvptree.Discrete[int]()(1, 2) != 1 {
		t.Error("Discrete wrong")
	}
	if err := mvptree.CheckAxioms(mvptree.L2, [][]float64{a, b, {1, 1}}, 1e-9); err != nil {
		t.Errorf("CheckAxioms: %v", err)
	}
}

func TestImageFacade(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 1))
	imgs := mvptree.SyntheticImages(rng, 30, mvptree.ImageOptions{Width: 16, Height: 16, Subjects: 3})
	tree, err := mvptree.New(imgs, mvptree.ImageL1, mvptree.Options{Partitions: 2, LeafCapacity: 5, PathLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	nn := tree.KNN(imgs[0], 3)
	if len(nn) != 3 || nn[0].Dist != 0 {
		t.Errorf("image KNN = %v", nn)
	}

	var buf bytes.Buffer
	if err := mvptree.EncodePGM(&buf, imgs[0]); err != nil {
		t.Fatal(err)
	}
	back, err := mvptree.DecodePGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mvptree.ImageL1(imgs[0], back) != 0 {
		t.Error("PGM round trip changed the image")
	}
}

func TestHistogramFacade(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 1))
	vs := mvptree.UniformVectors(rng, 120, 20)
	h := mvptree.PairwiseHistogram(vs, mvptree.L2, 0.01)
	if h.Total() != 120*119/2 {
		t.Errorf("Total = %d", h.Total())
	}
	hs := mvptree.SampledPairwiseHistogram(rng, vs, mvptree.L2, 0.01, 1000)
	if hs.Total() != 1000 {
		t.Errorf("sampled Total = %d", hs.Total())
	}
	if m := h.Mean(); m < 1.5 || m > 2.0 {
		t.Errorf("mean pairwise distance %g", m)
	}
}

func TestTreeStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 1))
	vectors := mvptree.UniformVectors(rng, 800, 6)
	tree, err := mvptree.New(vectors, mvptree.L2, mvptree.Options{Partitions: 3, LeafCapacity: 20, PathLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := tree.Shape()
	if s.VantagePoints+s.LeafItems != 800 {
		t.Errorf("Shape accounting: %d + %d != 800", s.VantagePoints, s.LeafItems)
	}
	if s.Height == 0 || s.Leaves == 0 {
		t.Errorf("Shape = %+v", s)
	}
}

func TestClusteredAndWordsGenerators(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 1))
	cv := mvptree.ClusteredVectors(rng, 300, 10, 50, 0.15)
	if len(cv) != 300 || len(cv[0]) != 10 {
		t.Errorf("ClusteredVectors shape %dx%d", len(cv), len(cv[0]))
	}
	ws := mvptree.Words(rng, 100, mvptree.WordOptions{})
	if len(ws) != 100 {
		t.Errorf("Words len %d", len(ws))
	}
	qs := mvptree.SampleQueries(rng, ws, 10)
	if len(qs) != 10 {
		t.Errorf("SampleQueries len %d", len(qs))
	}
}

func TestGeneralTreePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 1))
	vectors := mvptree.UniformVectors(rng, 400, 8)
	tree, err := mvptree.NewGeneral(vectors, mvptree.L2, mvptree.GeneralOptions{
		Vantages: 3, Partitions: 2, LeafCapacity: 10, PathLength: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	scan := mvptree.NewLinear(vectors, mvptree.L2)
	q := vectors[11]
	got := tree.Range(q, 0.5)
	want := scan.Range(q, 0.5)
	if len(got) != len(want) {
		t.Errorf("GeneralTree Range found %d, linear %d", len(got), len(want))
	}
	nn := tree.KNN(q, 3)
	if len(nn) != 3 || nn[0].Dist != 0 {
		t.Errorf("GeneralTree KNN = %v", nn)
	}
	if tree.Vantages() != 3 {
		t.Errorf("Vantages() = %d", tree.Vantages())
	}
}
