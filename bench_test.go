package mvptree_test

// One benchmark per table/figure of the paper (Figures 4–11, the
// headline claims, and the ablation/extension studies from DESIGN.md),
// each driving the same experiment definitions as cmd/mvpbench at a
// reduced scale, plus micro-benchmarks of the core operations.
//
// Figure benchmarks attach their headline measurements as custom
// benchmark metrics (distcomps/query), so `go test -bench .` regenerates
// the numbers EXPERIMENTS.md discusses. Run cmd/mvpbench for the
// paper-scale versions.

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"

	"mvptree"
	"mvptree/internal/bench"
	"mvptree/internal/experiments"
)

// benchConfig is the reduced scale used by the figure benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Queries = 20
	cfg.TreeSeeds = []uint64{101, 202}
	return cfg
}

// reportCells attaches one metric per (structure, sweep value) pair.
func reportCells(b *testing.B, tbl *bench.Table) {
	b.Helper()
	last := tbl.Values[len(tbl.Values)-1]
	for _, name := range tbl.Structures {
		for _, v := range []float64{tbl.Values[0], last} {
			cell, err := tbl.Cell(v, name)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(cell.AvgDistComps, name+"@"+formatValue(tbl.Label, v))
		}
	}
}

func formatValue(label string, v float64) string {
	s := label + "="
	switch {
	case v == float64(int64(v)):
		return s + itoa(int64(v))
	default:
		// one decimal is enough for the swept radii
		whole := int64(v)
		frac := int64((v - float64(whole)) * 100)
		if frac < 0 {
			frac = -frac
		}
		return s + itoa(whole) + "." + itoa(frac)
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkFig4UniformHistogram(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		h := experiments.Fig4(cfg)
		b.ReportMetric(h.Mean(), "mean-distance")
	}
}

func BenchmarkFig5ClusteredHistogram(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		h := experiments.Fig5(cfg)
		b.ReportMetric(h.Quantile(0.99)-h.Quantile(0.01), "distance-span")
	}
}

func BenchmarkFig6ImageHistogramL1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		h := experiments.Fig6(cfg)
		b.ReportMetric(float64(len(h.Peaks(5, 0.05))), "peaks")
	}
}

func BenchmarkFig7ImageHistogramL2(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		h := experiments.Fig7(cfg)
		b.ReportMetric(float64(len(h.Peaks(5, 0.05))), "peaks")
	}
}

func BenchmarkFig8UniformVectors(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, tbl)
	}
}

func BenchmarkFig9ClusteredVectors(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, tbl)
	}
}

func BenchmarkFig10ImagesL1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, tbl)
	}
}

func BenchmarkFig11ImagesL2(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, tbl)
	}
}

func BenchmarkClaimsHeadline(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		claims, err := experiments.Claims(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, cl := range claims {
			if cl.A == "mvpt(3,80)" {
				b.ReportMetric(cl.SavingsPc, cl.Workload+"-savings%@r="+formatValue("", cl.Radius)[1:])
			}
		}
	}
}

func BenchmarkAblationPathLength(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.AblationP(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, tbl)
	}
}

func BenchmarkAblationLeafCapacity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.AblationK(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, tbl)
	}
}

func BenchmarkAblationSecondVantage(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.AblationSV2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, tbl)
	}
}

func BenchmarkKNNStudy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.KNNStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, tbl)
	}
}

func BenchmarkStructureStudy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.StructureStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, tbl)
	}
}

func BenchmarkWordStudy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.WordStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportCells(b, tbl)
	}
}

// Micro-benchmarks of the core operations in wall-clock terms.

func benchVectors(n, dim int) ([][]float64, [][]float64) {
	rng := rand.New(rand.NewPCG(42, 42))
	return mvptree.UniformVectors(rng, n, dim), mvptree.UniformVectors(rng, 64, dim)
}

// BenchmarkBuildMVP compares serial and parallel construction of the
// paper's mvp-tree configuration; the tree built is identical for every
// worker count, so the sub-benchmarks measure pure wall-clock speedup.
func BenchmarkBuildMVP(b *testing.B) {
	items, _ := benchVectors(10000, 20)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mvptree.New(items, mvptree.L2, mvptree.Options{
					Partitions: 3, LeafCapacity: 80, PathLength: 5,
					Build: mvptree.BuildOptions{Workers: workers},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildVP is BenchmarkBuildMVP for the binary vp-tree, whose
// leaf-heavy recursion stresses Fork more than Measure.
func BenchmarkBuildVP(b *testing.B) {
	items, _ := benchVectors(10000, 20)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mvptree.NewVP(items, mvptree.L2, mvptree.VPOptions{
					Order: 2, Build: mvptree.BuildOptions{Workers: workers},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRangeMVP(b *testing.B) {
	items, queries := benchVectors(10000, 20)
	tree, err := mvptree.New(items, mvptree.L2, mvptree.Options{Partitions: 3, LeafCapacity: 80, PathLength: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Range(queries[i%len(queries)], 0.3)
	}
}

func BenchmarkRangeVP(b *testing.B) {
	items, queries := benchVectors(10000, 20)
	tree, err := mvptree.NewVP(items, mvptree.L2, mvptree.VPOptions{Order: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Range(queries[i%len(queries)], 0.3)
	}
}

func BenchmarkRangeLinear(b *testing.B) {
	items, queries := benchVectors(10000, 20)
	scan := mvptree.NewLinear(items, mvptree.L2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan.Range(queries[i%len(queries)], 0.3)
	}
}

func BenchmarkKNNMVP(b *testing.B) {
	items, queries := benchVectors(10000, 20)
	tree, err := mvptree.New(items, mvptree.L2, mvptree.Options{Partitions: 3, LeafCapacity: 80, PathLength: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNN(queries[i%len(queries)], 10)
	}
}

func BenchmarkKNNVP(b *testing.B) {
	items, queries := benchVectors(10000, 20)
	tree, err := mvptree.NewVP(items, mvptree.L2, mvptree.VPOptions{Order: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNN(queries[i%len(queries)], 10)
	}
}

func BenchmarkEditDistance(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 7))
	words := mvptree.Words(rng, 256, mvptree.WordOptions{MinLen: 8, MaxLen: 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mvptree.EditDistance(words[i%256], words[(i+1)%256])
	}
}

func BenchmarkImageL1(b *testing.B) {
	rng := rand.New(rand.NewPCG(8, 8))
	imgs := mvptree.SyntheticImages(rng, 16, mvptree.ImageOptions{Width: 64, Height: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mvptree.ImageL1(imgs[i%16], imgs[(i+1)%16])
	}
}

func BenchmarkBuildGeneral3Vantage(b *testing.B) {
	items, _ := benchVectors(10000, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mvptree.NewGeneral(items, mvptree.L2, mvptree.GeneralOptions{
			Vantages: 3, Partitions: 2, LeafCapacity: 80, PathLength: 5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeGeneral3Vantage(b *testing.B) {
	items, queries := benchVectors(10000, 20)
	tree, err := mvptree.NewGeneral(items, mvptree.L2, mvptree.GeneralOptions{
		Vantages: 3, Partitions: 2, LeafCapacity: 80, PathLength: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Range(queries[i%len(queries)], 0.3)
	}
}

func BenchmarkSaveLoadMVP(b *testing.B) {
	items, _ := benchVectors(5000, 20)
	tree, err := mvptree.New(items, mvptree.L2, mvptree.Options{Partitions: 3, LeafCapacity: 80, PathLength: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := mvptree.SaveTree(&buf, tree, mvptree.EncodeVector); err != nil {
			b.Fatal(err)
		}
		if _, err := mvptree.LoadTree(&buf, mvptree.L2, mvptree.DecodeVector); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicInsert(b *testing.B) {
	items, _ := benchVectors(10000, 20)
	store, err := mvptree.NewDynamic(items, mvptree.L2, mvptree.DynamicOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Insert(mvptree.UniformVectors(rng, 1, 20)[0]); err != nil {
			b.Fatal(err)
		}
	}
}
