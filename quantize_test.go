package mvptree

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"mvptree/internal/dataset"
)

// The cross-structure quantize invariance table: every structure
// supporting WithQuantized, in both representations, must answer
// byte-identically with the pre-filter on and off while spending
// byte-identical distance counts (a certified skip is charged exactly
// like the abandoned kernel call it replaces). This is the facade-level
// twin of the per-package quantize tests: it exercises the
// WithQuantized construction option itself.

func quantizeCases[T any](mode QuantizeMode) []struct {
	name  string
	build func(items []T, dist DistanceFunc[T], on bool) (StatsIndex[T], error)
} {
	opt := func(on bool) []IndexOption[T] {
		if !on {
			return nil
		}
		return []IndexOption[T]{WithQuantized[T](mode)}
	}
	seed := BuildOptions{Seed: 7}
	return []struct {
		name  string
		build func(items []T, dist DistanceFunc[T], on bool) (StatsIndex[T], error)
	}{
		{"mvpt", func(items []T, dist DistanceFunc[T], on bool) (StatsIndex[T], error) {
			return New(items, dist, Options{Partitions: 3, LeafCapacity: 20, PathLength: 5, Build: seed}, opt(on)...)
		}},
		{"vpt", func(items []T, dist DistanceFunc[T], on bool) (StatsIndex[T], error) {
			return NewVP(items, dist, VPOptions{Order: 2, Build: seed}, opt(on)...)
		}},
		{"linear", func(items []T, dist DistanceFunc[T], on bool) (StatsIndex[T], error) {
			return NewLinear(items, dist, opt(on)...), nil
		}},
	}
}

func checkQuantizeInvariance(t *testing.T, items, queries [][]float64,
	dist DistanceFunc[[]float64], radii []float64, ks []int) {
	t.Helper()
	for _, mode := range []QuantizeMode{QuantizeSQ8, QuantizeF32} {
		for _, tc := range quantizeCases[[]float64](mode) {
			t.Run(tc.name+"/"+mode.String(), func(t *testing.T) {
				off, err := tc.build(items, dist, false)
				if err != nil {
					t.Fatalf("build (quantize off): %v", err)
				}
				on, err := tc.build(items, dist, true)
				if err != nil {
					t.Fatalf("build (quantize on): %v", err)
				}
				for _, q := range queries {
					for _, r := range radii {
						offBefore := off.DistanceCount()
						resOff, sOff := off.RangeWithStats(q, r)
						offCost := off.DistanceCount() - offBefore

						onBefore := on.DistanceCount()
						resOn, sOn := on.RangeWithStats(q, r)
						onCost := on.DistanceCount() - onBefore

						if fmt.Sprint(resOn) != fmt.Sprint(resOff) {
							t.Fatalf("range r=%g: quantize changed the result sequence", r)
						}
						if sOff != sOn {
							t.Fatalf("range r=%g: stats differ: off %+v on %+v", r, sOff, sOn)
						}
						if onCost != offCost {
							t.Fatalf("range r=%g: quantize cost %d distances, baseline %d", r, onCost, offCost)
						}
					}
					for _, k := range ks {
						offBefore := off.DistanceCount()
						nnOff, sOff := off.KNNWithStats(q, k)
						offCost := off.DistanceCount() - offBefore

						onBefore := on.DistanceCount()
						nnOn, sOn := on.KNNWithStats(q, k)
						onCost := on.DistanceCount() - onBefore

						if len(nnOff) != len(nnOn) {
							t.Fatalf("knn k=%d: %d vs %d neighbors", k, len(nnOff), len(nnOn))
						}
						for i := range nnOff {
							if nnOff[i].Dist != nnOn[i].Dist {
								t.Fatalf("knn k=%d: neighbor %d distance %g vs %g", k, i, nnOff[i].Dist, nnOn[i].Dist)
							}
						}
						if sOff != sOn {
							t.Fatalf("knn k=%d: stats differ: off %+v on %+v", k, sOff, sOn)
						}
						if onCost != offCost {
							t.Fatalf("knn k=%d: quantize cost %d distances, baseline %d", k, onCost, offCost)
						}
					}
				}
			})
		}
	}
}

func TestQuantizeInvarianceUniformVectors(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 0))
	items := dataset.UniformVectors(rng, 1200, 12)
	queries := dataset.UniformQueries(rng, 10, 12)
	checkQuantizeInvariance(t, items, queries, L2,
		[]float64{0.15, 0.3, 0.5}, []int{1, 5, 10})
}

func TestQuantizeInvarianceClusteredVectors(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 0))
	items := dataset.ClusteredVectors(rng, 1200, 12, 60, 0.1)
	queries := dataset.SampleQueries(rng, items, 10)
	checkQuantizeInvariance(t, items, queries, L1,
		[]float64{0.2, 0.4, 0.8}, []int{1, 5, 10})
}

// TestQuantizeCosineWorkload pins the embedding-style path end to end:
// normalized vectors under the Cosine chord metric, with the facade
// wrapper's registered quantized shape, pre-filter on vs off.
func TestQuantizeCosineWorkload(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 0))
	items := NormalizeL2Set(dataset.UniformVectors(rng, 1000, 16))
	queries := NormalizeL2Set(dataset.UniformQueries(rng, 8, 16))
	checkQuantizeInvariance(t, items, queries, Cosine,
		[]float64{0.3, 0.7}, []int{1, 8})
}

// TestQuantizeObservability pins that a facade-built quantized index
// reports pruning through the attached Observer.
func TestQuantizeObservability(t *testing.T) {
	rng := rand.New(rand.NewPCG(16, 0))
	items := dataset.UniformVectors(rng, 2000, 16)
	ob := NewObserver(1)
	tree, err := New(items, L2,
		Options{Partitions: 3, LeafCapacity: 40, PathLength: 4, Build: BuildOptions{Seed: 2}},
		WithObserver[[]float64](ob), WithQuantized[[]float64](QuantizeSQ8))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range dataset.UniformQueries(rng, 12, 16) {
		tree.Range(q, 0.4)
		tree.KNN(q, 5)
	}
	if ob.Snapshot().Search.FilteredByQuantized == 0 {
		t.Error("observer saw no quantize-pruned candidates")
	}
}
