package mvptree_test

// Invariance and semantics of the unified Search entry point across
// every structure: zero-valued SearchOptions must reproduce the exact
// query paths byte for byte — same results in the same order, same
// SearchStats, same distance-counter delta — on vector and edit
// workloads alike, and the approximation knobs must honor their
// contracts (superset-free ε-range, (1+ε)-bounded kNN, budget
// accounting that never overspends).

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"

	"mvptree"
)

// vecSearchers builds each vector-capable structure over items. The
// bool marks structures whose exact traversal order (and therefore
// kNN distance count) is deterministic; the BK-tree's map-ordered
// children make it the one order-insensitive case, on the edit
// workload below.
func vecSearchers(t *testing.T, items [][]float64) map[string]mvptree.Searcher[[]float64] {
	t.Helper()
	out := map[string]mvptree.Searcher[[]float64]{}
	mustVec := func(name string, idx mvptree.Searcher[[]float64], err error) {
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		out[name] = idx
	}
	bo := mvptree.BuildOptions{Seed: 5}
	tree, err := mvptree.New(items, mvptree.L2, mvptree.Options{Partitions: 3, LeafCapacity: 20, PathLength: 4, Build: bo})
	mustVec("mvp", tree, err)
	vp, err := mvptree.NewVP(items, mvptree.L2, mvptree.VPOptions{Order: 3, Build: bo})
	mustVec("vp", vp, err)
	gh, err := mvptree.NewGH(items, mvptree.L2, mvptree.GHOptions{Build: bo})
	mustVec("gh", gh, err)
	gn, err := mvptree.NewGNAT(items, mvptree.L2, mvptree.GNATOptions{Build: bo})
	mustVec("gnat", gn, err)
	ball, err := mvptree.NewBall(items, mvptree.L2, mvptree.BallOptions{Build: bo})
	mustVec("ball", ball, err)
	pv, err := mvptree.NewPivotTable(items, mvptree.L2, mvptree.PivotOptions{Pivots: 8, Build: bo})
	mustVec("pivot", pv, err)
	gen, err := mvptree.NewGeneral(items, mvptree.L2, mvptree.GeneralOptions{Vantages: 3, Partitions: 2, Build: bo})
	mustVec("general", gen, err)
	out["linear"] = mvptree.NewLinear(items, mvptree.L2)
	dyn, err := mvptree.NewDynamic(items, mvptree.L2, mvptree.DynamicOptions{
		Tree: mvptree.Options{Partitions: 2, LeafCapacity: 20, PathLength: 3, Build: bo},
	})
	mustVec("dynamic", dyn, err)
	return out
}

// editSearchers builds each structure over a word set under edit
// distance — including the BK-tree, which only exists here because it
// needs an integer-valued metric.
func editSearchers(t *testing.T, words []string) map[string]mvptree.Searcher[string] {
	t.Helper()
	out := map[string]mvptree.Searcher[string]{}
	must := func(name string, idx mvptree.Searcher[string], err error) {
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		out[name] = idx
	}
	bo := mvptree.BuildOptions{Seed: 5}
	tree, err := mvptree.New(words, mvptree.EditDistance, mvptree.Options{Partitions: 2, LeafCapacity: 10, PathLength: 2, Build: bo})
	must("mvp", tree, err)
	vp, err := mvptree.NewVP(words, mvptree.EditDistance, mvptree.VPOptions{Order: 2, Build: bo})
	must("vp", vp, err)
	gh, err := mvptree.NewGH(words, mvptree.EditDistance, mvptree.GHOptions{Build: bo})
	must("gh", gh, err)
	gn, err := mvptree.NewGNAT(words, mvptree.EditDistance, mvptree.GNATOptions{Build: bo})
	must("gnat", gn, err)
	ball, err := mvptree.NewBall(words, mvptree.EditDistance, mvptree.BallOptions{Build: bo})
	must("ball", ball, err)
	pv, err := mvptree.NewPivotTable(words, mvptree.EditDistance, mvptree.PivotOptions{Pivots: 6, Build: bo})
	must("pivot", pv, err)
	gen, err := mvptree.NewGeneral(words, mvptree.EditDistance, mvptree.GeneralOptions{Vantages: 2, Partitions: 2, Build: bo})
	must("general", gen, err)
	out["linear"] = mvptree.NewLinear(words, mvptree.EditDistance)
	bk, err := mvptree.NewBK(words, mvptree.EditDistance)
	must("bk", bk, err)
	return out
}

// checkZeroOptsIdentical asserts Search with zero options reproduces
// the exact methods byte for byte. orderInsensitive relaxes the
// comparison to distance multisets and skips the cost comparison for
// kNN — the BK-tree's children live in a map, so its traversal order
// (legal at ties, and what τ sees when) differs run to run.
func checkZeroOptsIdentical[T any](t *testing.T, name string, idx mvptree.Searcher[T], queries []T, r float64, k int, orderInsensitive bool) {
	t.Helper()
	for qi, q := range queries {
		c0 := idx.DistanceCount()
		wantItems, wantRS := idx.RangeWithStats(q, r)
		wantCost := idx.DistanceCount() - c0
		c0 = idx.DistanceCount()
		res := idx.Search(mvptree.NewRangeQuery(q, r))
		gotCost := idx.DistanceCount() - c0
		if !res.Exact() || res.Exhausted() {
			t.Errorf("%s q%d: zero-option range Search not reported exact: %+v", name, qi, res.Stats)
		}
		if orderInsensitive {
			if !sameMultiset(wantItems, res.Items) {
				t.Errorf("%s q%d: range Search item multiset differs", name, qi)
			}
		} else {
			if !reflect.DeepEqual(wantItems, res.Items) {
				t.Errorf("%s q%d: range Search items differ: %d vs %d", name, qi, len(wantItems), len(res.Items))
			}
			if res.Stats != wantRS {
				t.Errorf("%s q%d: range Search stats differ:\n  exact  %+v\n  search %+v", name, qi, wantRS, res.Stats)
			}
			if gotCost != wantCost {
				t.Errorf("%s q%d: range Search cost %d, exact %d", name, qi, gotCost, wantCost)
			}
		}
		if res.Stats.Distances() != gotCost {
			t.Errorf("%s q%d: range Stats.Distances()=%d, counter delta %d", name, qi, res.Stats.Distances(), gotCost)
		}

		c0 = idx.DistanceCount()
		wantNb, wantKS := idx.KNNWithStats(q, k)
		wantCost = idx.DistanceCount() - c0
		c0 = idx.DistanceCount()
		kres := idx.Search(mvptree.NewKNNQuery(q, k))
		gotCost = idx.DistanceCount() - c0
		if !kres.Exact() || kres.Exhausted() {
			t.Errorf("%s q%d: zero-option kNN Search not reported exact: %+v", name, qi, kres.Stats)
		}
		if orderInsensitive {
			if !sameDists(wantNb, kres.Neighbors) {
				t.Errorf("%s q%d: kNN Search distance multiset differs", name, qi)
			}
		} else {
			if !reflect.DeepEqual(wantNb, kres.Neighbors) {
				t.Errorf("%s q%d: kNN Search neighbors differ", name, qi)
			}
			if kres.Stats != wantKS {
				t.Errorf("%s q%d: kNN Search stats differ:\n  exact  %+v\n  search %+v", name, qi, wantKS, kres.Stats)
			}
			if gotCost != wantCost {
				t.Errorf("%s q%d: kNN Search cost %d, exact %d", name, qi, gotCost, wantCost)
			}
		}
		if kres.Stats.Distances() != gotCost {
			t.Errorf("%s q%d: kNN Stats.Distances()=%d, counter delta %d", name, qi, kres.Stats.Distances(), gotCost)
		}
	}
}

func sameMultiset[T any](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i], kb[i] = fmt.Sprint(a[i]), fmt.Sprint(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	return reflect.DeepEqual(ka, kb)
}

func sameDists[T any](a, b []mvptree.Neighbor[T]) bool {
	if len(a) != len(b) {
		return false
	}
	da := make([]float64, len(a))
	db := make([]float64, len(b))
	for i := range a {
		da[i], db[i] = a[i].Dist, b[i].Dist
	}
	sort.Float64s(da)
	sort.Float64s(db)
	return reflect.DeepEqual(da, db)
}

// TestSearchZeroOptionsByteIdentical is the cross-structure invariance
// table: ε = 0 and an unset budget must reproduce the exact paths on
// every structure and workload.
func TestSearchZeroOptionsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 7))
	uniform := mvptree.UniformVectors(rng, 1200, 8)
	clustered := mvptree.ClusteredVectors(rng, 1200, 8, 60, 0.12)
	vecQueries := mvptree.UniformVectors(rng, 6, 8)
	words := mvptree.Words(rng, 600, mvptree.WordOptions{})
	wordQueries := mvptree.Words(rng, 5, mvptree.WordOptions{})

	for wlName, items := range map[string][][]float64{"uniform": uniform, "clustered": clustered} {
		for name, idx := range vecSearchers(t, items) {
			t.Run(wlName+"/"+name, func(t *testing.T) {
				checkZeroOptsIdentical(t, name, idx, vecQueries, 0.6, 5, false)
			})
		}
	}
	for name, idx := range editSearchers(t, words) {
		t.Run("edit/"+name, func(t *testing.T) {
			checkZeroOptsIdentical(t, name, idx, wordQueries, 2, 3, name == "bk")
		})
	}
	// A huge budget must also reproduce the exact answer (the traversal
	// completes within it), though the query is still flagged
	// approximate-capable only if it exhausted — which it cannot here.
	tree, err := mvptree.New(uniform, mvptree.L2, mvptree.Options{Partitions: 3, LeafCapacity: 20, PathLength: 4, Build: mvptree.BuildOptions{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range vecQueries {
		want, _ := tree.KNNWithStats(q, 5)
		req := mvptree.NewKNNQuery(q, 5)
		req.Opts.Budget = 1 << 40
		got := tree.Search(req)
		if got.Exhausted() || !got.Exact() {
			t.Fatalf("unlimited-budget query flagged approximate: %+v", got.Stats)
		}
		if !reflect.DeepEqual(want, got.Neighbors) {
			t.Fatal("unlimited-budget kNN differs from exact")
		}
	}
}

// TestApproxSemanticsAllStructures checks the three knobs' contracts
// on every vector structure: ε-range answers sit between the exact
// answer at r/(1+ε) and the exact answer at r; ε-kNN distances are
// within (1+ε) of the true ones rank by rank; budgeted queries never
// spend more than the budget and report exhaustion; and
// Stats.Distances() equals the counter delta even mid-traversal.
func TestApproxSemanticsAllStructures(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 9))
	items := mvptree.ClusteredVectors(rng, 1500, 10, 75, 0.15)
	queries := mvptree.UniformVectors(rng, 5, 10)
	const (
		eps = 0.5
		r   = 0.7
		k   = 5
	)
	scan := mvptree.NewLinear(items, mvptree.L2)

	for name, idx := range vecSearchers(t, items) {
		t.Run(name, func(t *testing.T) {
			for qi, q := range queries {
				// ε-range: superset of exact at r/(1+ε), subset of exact at r.
				within := map[string]bool{}
				for _, it := range scan.Range(q, r) {
					within[fmt.Sprint(it)] = true
				}
				guaranteed := scan.Range(q, r/(1+eps))

				req := mvptree.NewRangeQuery(q, r)
				req.Opts.Epsilon = eps
				res := idx.Search(req)
				if res.Exact() {
					t.Errorf("q%d: ε>0 answer claimed exact", qi)
				}
				got := map[string]bool{}
				for _, it := range res.Items {
					key := fmt.Sprint(it)
					got[key] = true
					if !within[key] {
						t.Errorf("q%d: ε-range reported an item farther than r", qi)
					}
				}
				for _, it := range guaranteed {
					if !got[fmt.Sprint(it)] {
						t.Errorf("q%d: ε-range missed an item within r/(1+ε)", qi)
					}
				}

				// ε-kNN: i-th distance within (1+ε) of the true i-th.
				trueNb := scan.KNN(q, k)
				kreq := mvptree.NewKNNQuery(q, k)
				kreq.Opts.Epsilon = eps
				kres := idx.Search(kreq)
				if len(kres.Neighbors) != len(trueNb) {
					t.Fatalf("q%d: ε-kNN returned %d of %d neighbors", qi, len(kres.Neighbors), len(trueNb))
				}
				for i, nb := range kres.Neighbors {
					if nb.Dist > (1+eps)*trueNb[i].Dist+1e-12 {
						t.Errorf("q%d: ε-kNN dist[%d]=%g exceeds (1+ε)·%g", qi, i, nb.Dist, trueNb[i].Dist)
					}
				}

				// Budget: tiny budget must be respected to the computation
				// and reported; the stats must reconcile with the counter.
				const budget = 25
				breq := mvptree.NewKNNQuery(q, k)
				breq.Opts.Budget = budget
				c0 := idx.DistanceCount()
				bres := idx.Search(breq)
				delta := idx.DistanceCount() - c0
				if delta > budget {
					t.Errorf("q%d: budget %d but %d distances computed", qi, budget, delta)
				}
				if bres.Stats.Distances() != delta {
					t.Errorf("q%d: budget run Stats.Distances()=%d, counter delta %d", qi, bres.Stats.Distances(), delta)
				}
				if !bres.Exhausted() {
					t.Errorf("q%d: %d-distance budget on %d items not reported exhausted", qi, budget, len(items))
				}
			}
		})
	}
}

// TestPatienceStopsEarly checks the early-termination knob on the
// primary tree: a patient-less search visits no fewer candidates and
// an impatient one still returns k neighbors, flagged approximate.
func TestPatienceStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 3))
	items := mvptree.UniformVectors(rng, 3000, 12)
	q := mvptree.UniformVectors(rng, 1, 12)[0]
	tree, err := mvptree.New(items, mvptree.L2, mvptree.Options{Partitions: 3, LeafCapacity: 25, PathLength: 4, Build: mvptree.BuildOptions{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	req := mvptree.NewKNNQuery(q, 5)
	req.Opts.Patience = 2
	res := tree.Search(req)
	if len(res.Neighbors) != 5 {
		t.Fatalf("patience run returned %d neighbors", len(res.Neighbors))
	}
	if res.Exact() {
		// Patience may legitimately never fire on an easy query, but it
		// must then have run the full traversal: compare to exact.
		want, _ := tree.KNNWithStats(q, 5)
		if !reflect.DeepEqual(want, res.Neighbors) {
			t.Fatal("patience run flagged exact but differs from the exact answer")
		}
	}
}
